#!/usr/bin/env python
"""Docstring-coverage gate for the public API.

Walks every module under ``src/repro`` (via the shared
:mod:`tools._repo` walk — the same file set :mod:`tools.sketchlint`
analyzes) and requires a docstring on:

* the module itself,
* every public class and function (name not starting with ``_``),
* every public method of a public class (dunders other than
  ``__init__`` are exempt; ``__init__`` may document itself in the
  class docstring instead, the numpy style used throughout this repo).

A method that *overrides* a documented method of a repo base class
(e.g. ``StreamingAlgorithm.process``) inherits its contract and is
exempt — interface docs live on the interface, once.

Exit code 1 lists the offenders — so new public APIs can't land
undocumented (wired into ``make docs-check``); exit code 2 means the
tree itself is malformed (a promised sub-package is missing).  Pure
stdlib; no third-party dependencies.
"""

from __future__ import annotations

import ast
import pathlib
import sys

if __package__ in (None, ""):  # run as a script: put the repo root on sys.path
    sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent))

from tools import _repo


def _public(name: str) -> bool:
    return not name.startswith("_")


def _base_names(node: ast.ClassDef) -> list[str]:
    names = []
    for base in node.bases:
        if isinstance(base, ast.Name):
            names.append(base.id)
        elif isinstance(base, ast.Attribute):
            names.append(base.attr)
    return names


def _collect_classes(trees: list[ast.Module]) -> dict[str, tuple[list[str], set[str]]]:
    """class name -> (base names, documented public method names)."""
    classes: dict[str, tuple[list[str], set[str]]] = {}
    for tree in trees:
        for node in ast.walk(tree):
            if not isinstance(node, ast.ClassDef):
                continue
            documented = {
                item.name
                for item in node.body
                if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef))
                and ast.get_docstring(item) is not None
            }
            classes[node.name] = (_base_names(node), documented)
    return classes


def _inherited_doc(
    method: str, bases: list[str], classes: dict[str, tuple[list[str], set[str]]]
) -> bool:
    """Whether any (transitive, repo-local) base documents ``method``."""
    queue = list(bases)
    seen: set[str] = set()
    while queue:
        base = queue.pop()
        if base in seen or base not in classes:
            continue
        seen.add(base)
        base_bases, documented = classes[base]
        if method in documented:
            return True
        queue.extend(base_bases)
    return False


def _missing_in_class(
    node: ast.ClassDef, module: str, classes: dict[str, tuple[list[str], set[str]]]
) -> list[str]:
    missing = []
    bases = _base_names(node)
    for item in node.body:
        if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
            if item.name == "__init__" or not _public(item.name):
                continue
            if ast.get_docstring(item) is not None:
                continue
            if _inherited_doc(item.name, bases, classes):
                continue
            missing.append(f"{module}:{item.lineno} {node.name}.{item.name}")
    return missing


def check_module(
    path: pathlib.Path, tree: ast.Module, classes: dict[str, tuple[list[str], set[str]]]
) -> list[str]:
    """Missing-docstring entries for one parsed module."""
    module = str(path.relative_to(_repo.REPO_ROOT))
    missing = []
    if ast.get_docstring(tree) is None:
        missing.append(f"{module}:1 <module>")
    for node in tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            if _public(node.name) and ast.get_docstring(node) is None:
                missing.append(f"{module}:{node.lineno} {node.name}")
        elif isinstance(node, ast.ClassDef):
            if _public(node.name):
                if ast.get_docstring(node) is None:
                    missing.append(f"{module}:{node.lineno} {node.name}")
                missing.extend(_missing_in_class(node, module, classes))
    return missing


def main() -> int:
    """Walk the source tree and report undocumented public APIs."""
    absent = _repo.missing_packages()
    if absent:
        print(
            f"expected packages missing under {_repo.PACKAGE_DIR}: "
            f"{', '.join(absent)}",
            file=sys.stderr,
        )
        return 2
    modules = _repo.iter_source_files()
    if not modules:
        print(f"no modules found under {_repo.PACKAGE_DIR}", file=sys.stderr)
        return 2
    trees = [ast.parse(path.read_text(encoding="utf-8")) for path in modules]
    classes = _collect_classes(trees)
    missing: list[str] = []
    for path, tree in zip(modules, trees):
        missing.extend(check_module(path, tree, classes))
    total = len(modules)
    if missing:
        print(f"{len(missing)} public definitions lack docstrings "
              f"(checked {total} modules):")
        for entry in missing:
            print(f"  {entry}")
        return 1
    print(f"docstring coverage OK: {total} modules, all public APIs documented")
    return 0


if __name__ == "__main__":
    sys.exit(main())
