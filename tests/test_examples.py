"""Smoke tests: the runnable examples must stay green.

Only the fast examples run here (the full set is exercised manually /
in docs); each is imported as a module and its ``main()`` invoked.
"""

import importlib.util
import pathlib

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).parent.parent / "examples"


def run_example(name: str) -> None:
    path = EXAMPLES_DIR / name
    spec = importlib.util.spec_from_file_location(name.removesuffix(".py"), path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    module.main()


def test_streaming_graph_monitor_example():
    run_example("streaming_graph_monitor.py")


def test_sparsify_and_solve_example():
    run_example("sparsify_and_solve.py")


def test_distributed_servers_example():
    run_example("distributed_servers.py")


def test_service_session_example():
    run_example("service_session.py")


def test_all_examples_have_main_and_docstring():
    examples = sorted(EXAMPLES_DIR.glob("*.py"))
    assert len(examples) >= 5, "at least five runnable examples are promised"
    for path in examples:
        source = path.read_text()
        assert '"""' in source.lstrip()[:3], f"{path.name} lacks a docstring"
        assert "def main()" in source, f"{path.name} lacks a main()"
        assert '__name__ == "__main__"' in source, f"{path.name} lacks an entry guard"
