"""Tests for the Graph container and edge indexing."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph.graph import Graph, edge_from_index, edge_index


class TestEdgeIndex:
    def test_round_trip(self):
        n = 50
        for u in range(0, n, 7):
            for v in range(u + 1, n, 3):
                assert edge_from_index(edge_index(u, v, n), n) == (u, v)

    def test_orientation_invariant(self):
        assert edge_index(3, 9, 20) == edge_index(9, 3, 20)

    def test_distinct_pairs_distinct_indices(self):
        n = 30
        indices = {edge_index(u, v, n) for u in range(n) for v in range(u + 1, n)}
        assert len(indices) == n * (n - 1) // 2

    def test_self_loop_rejected(self):
        with pytest.raises(ValueError):
            edge_index(4, 4, 10)

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            edge_index(0, 10, 10)

    def test_invalid_index_rejected(self):
        with pytest.raises(ValueError):
            edge_from_index(5 * 10 + 3, 10)  # u > v encoding


class TestGraphBasics:
    def test_empty(self):
        graph = Graph(5)
        assert graph.num_edges() == 0
        assert list(graph.edges()) == []

    def test_add_and_query(self):
        graph = Graph(5)
        graph.add_edge(0, 1, 2.5)
        assert graph.has_edge(0, 1)
        assert graph.has_edge(1, 0)
        assert graph.weight(0, 1) == 2.5
        assert graph.num_edges() == 1

    def test_add_replaces_weight(self):
        graph = Graph(5)
        graph.add_edge(0, 1, 1.0)
        graph.add_edge(1, 0, 3.0)
        assert graph.num_edges() == 1
        assert graph.weight(0, 1) == 3.0

    def test_remove(self):
        graph = Graph(5)
        graph.add_edge(0, 1)
        graph.remove_edge(1, 0)
        assert not graph.has_edge(0, 1)
        assert graph.num_edges() == 0

    def test_remove_absent_raises(self):
        graph = Graph(5)
        with pytest.raises(KeyError):
            graph.remove_edge(0, 1)

    def test_degrees_and_neighbors(self):
        graph = Graph(4)
        graph.add_edge(0, 1)
        graph.add_edge(0, 2)
        assert graph.degree(0) == 2
        assert set(graph.neighbors(0)) == {1, 2}
        assert graph.degree(3) == 0

    def test_edges_iteration_canonical(self):
        graph = Graph(4)
        graph.add_edge(2, 1)
        graph.add_edge(3, 0)
        assert sorted(graph.edge_set()) == [(0, 3), (1, 2)]

    def test_validation(self):
        with pytest.raises(ValueError):
            Graph(0)
        graph = Graph(3)
        with pytest.raises(ValueError):
            graph.add_edge(1, 1)
        with pytest.raises(ValueError):
            graph.add_edge(0, 3)
        with pytest.raises(ValueError):
            graph.add_edge(0, 1, 0.0)


class TestConnectivity:
    def test_connected_path(self):
        graph = Graph.from_edges(4, [(0, 1), (1, 2), (2, 3)])
        assert graph.is_connected()
        assert len(graph.connected_components()) == 1

    def test_disconnected(self):
        graph = Graph.from_edges(4, [(0, 1), (2, 3)])
        assert not graph.is_connected()
        components = graph.connected_components()
        assert sorted(map(sorted, components)) == [[0, 1], [2, 3]]

    def test_isolated_vertices(self):
        graph = Graph(3)
        assert len(graph.connected_components()) == 3


class TestDerivation:
    def test_copy_independent(self):
        graph = Graph.from_edges(3, [(0, 1)])
        clone = graph.copy()
        clone.add_edge(1, 2)
        assert graph.num_edges() == 1
        assert clone.num_edges() == 2

    def test_subgraph_of_edges(self):
        graph = Graph.from_edges(4, [(0, 1, 2.0), (1, 2, 3.0), (2, 3, 4.0)])
        sub = graph.subgraph_of_edges([(1, 2)])
        assert sub.edge_set() == {(1, 2)}
        assert sub.weight(1, 2) == 3.0

    def test_from_edges_with_weights(self):
        graph = Graph.from_edges(3, [(0, 1, 5.0), (1, 2)])
        assert graph.weight(0, 1) == 5.0
        assert graph.weight(1, 2) == 1.0

    def test_equality(self):
        left = Graph.from_edges(3, [(0, 1, 2.0)])
        right = Graph.from_edges(3, [(1, 0, 2.0)])
        assert left == right
        right.add_edge(1, 2)
        assert left != right


@settings(max_examples=50, deadline=None)
@given(
    edges=st.lists(
        st.tuples(st.integers(min_value=0, max_value=19), st.integers(min_value=0, max_value=19)),
        max_size=40,
    )
)
def test_handshake_property(edges):
    """Property: sum of degrees equals twice the edge count."""
    graph = Graph(20)
    for u, v in edges:
        if u != v and not graph.has_edge(u, v):
            graph.add_edge(u, v)
    assert sum(graph.degree(u) for u in range(20)) == 2 * graph.num_edges()
