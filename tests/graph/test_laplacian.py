"""Tests for Laplacians, spectral ordering and effective resistances."""

import math

import numpy as np
import pytest

from repro.graph.graph import Graph
from repro.graph.laplacian import (
    laplacian_matrix,
    quadratic_form,
    spectral_approximation,
)
from repro.graph.random_graphs import (
    complete_graph,
    connected_gnp,
    cycle_graph,
    path_graph,
    with_random_weights,
)
from repro.graph.resistance import edge_resistances, effective_resistance


class TestLaplacianMatrix:
    def test_definition(self):
        graph = Graph.from_edges(3, [(0, 1, 2.0), (1, 2, 3.0)])
        lap = laplacian_matrix(graph)
        expected = np.array([[2.0, -2.0, 0.0], [-2.0, 5.0, -3.0], [0.0, -3.0, 3.0]])
        assert np.allclose(lap, expected)

    def test_rows_sum_to_zero(self):
        graph = with_random_weights(connected_gnp(15, 0.3, seed=1), seed=1)
        lap = laplacian_matrix(graph)
        assert np.allclose(lap.sum(axis=1), 0.0)

    def test_positive_semidefinite(self):
        graph = connected_gnp(12, 0.4, seed=2)
        eigenvalues = np.linalg.eigvalsh(laplacian_matrix(graph))
        assert eigenvalues.min() > -1e-9

    def test_quadratic_form_matches_matrix(self):
        graph = with_random_weights(connected_gnp(10, 0.5, seed=3), seed=3)
        lap = laplacian_matrix(graph)
        rng = np.random.default_rng(0)
        for _ in range(5):
            x = rng.normal(size=10)
            assert quadratic_form(graph, x) == pytest.approx(float(x @ lap @ x))


class TestSpectralApproximation:
    def test_same_graph_is_exact(self):
        graph = connected_gnp(14, 0.3, seed=4)
        bounds = spectral_approximation(graph, graph)
        assert bounds.low == pytest.approx(1.0)
        assert bounds.high == pytest.approx(1.0)
        assert bounds.is_sparsifier(0.0 + 1e-9)

    def test_scaled_graph(self):
        graph = connected_gnp(14, 0.3, seed=5)
        scaled = Graph(14)
        for u, v, w in graph.edges():
            scaled.add_edge(u, v, 1.5 * w)
        bounds = spectral_approximation(graph, scaled)
        assert bounds.low == pytest.approx(1.5)
        assert bounds.high == pytest.approx(1.5)
        assert bounds.epsilon() == pytest.approx(0.5)

    def test_subgraph_bounded_above_by_one(self):
        graph = complete_graph(10)
        spanning_path = path_graph(10)
        bounds = spectral_approximation(graph, spanning_path)
        assert bounds.high <= 1.0 + 1e-9
        assert bounds.low < 1.0

    def test_candidate_connecting_new_vertices_is_infinite(self):
        base = Graph.from_edges(4, [(0, 1), (2, 3)])
        candidate = Graph.from_edges(4, [(0, 1), (2, 3), (1, 2)])
        bounds = spectral_approximation(base, candidate)
        assert bounds.high == math.inf

    def test_empty_graphs(self):
        bounds = spectral_approximation(Graph(3), Graph(3))
        assert bounds.low == 1.0
        assert bounds.high == 1.0

    def test_mismatched_sizes_rejected(self):
        with pytest.raises(ValueError):
            spectral_approximation(Graph(3), Graph(4))


class TestEffectiveResistance:
    def test_single_edge(self):
        graph = Graph.from_edges(2, [(0, 1, 1.0)])
        assert effective_resistance(graph, 0, 1) == pytest.approx(1.0)

    def test_series_path(self):
        # Resistors in series: R = sum of 1/w_e.
        graph = Graph.from_edges(3, [(0, 1, 1.0), (1, 2, 0.5)])
        assert effective_resistance(graph, 0, 2) == pytest.approx(1.0 + 2.0)

    def test_parallel_edges_via_cycle(self):
        # A cycle of length n: edge resistance is (n-1)/n (1 in series
        # parallel to n-1 in series).
        n = 8
        graph = cycle_graph(n)
        expected = (n - 1) / n
        assert effective_resistance(graph, 0, 1) == pytest.approx(expected)

    def test_complete_graph_known_value(self):
        # K_n: effective resistance across any edge is 2/n.
        n = 10
        graph = complete_graph(n)
        assert effective_resistance(graph, 2, 7) == pytest.approx(2.0 / n)

    def test_edge_resistances_bounded_by_one_over_weight(self):
        graph = with_random_weights(connected_gnp(12, 0.4, seed=6), seed=6)
        for (u, v), resistance in edge_resistances(graph).items():
            assert resistance <= 1.0 / graph.weight(u, v) + 1e-9

    def test_sum_over_tree_edges(self):
        # Foster's theorem: sum of edge resistances equals n - 1.
        graph = connected_gnp(12, 0.5, seed=7)
        total = sum(edge_resistances(graph).values())
        assert total == pytest.approx(graph.num_vertices - 1, abs=1e-6)
