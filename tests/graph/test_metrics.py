"""Tests for global graph metrics (cross-checked vs networkx)."""

import math

import networkx as nx
import pytest

from repro.graph.graph import Graph
from repro.graph.metrics import degree_summary, diameter, eccentricity, girth
from repro.graph.random_graphs import (
    complete_graph,
    connected_gnp,
    cycle_graph,
    grid_graph,
    path_graph,
    power_law_graph,
)


def to_networkx(graph):
    result = nx.Graph()
    result.add_nodes_from(range(graph.num_vertices))
    result.add_edges_from((u, v) for u, v, _ in graph.edges())
    return result


class TestEccentricityAndDiameter:
    def test_path_graph(self):
        graph = path_graph(7)
        assert eccentricity(graph, 0) == 6.0
        assert eccentricity(graph, 3) == 3.0
        assert diameter(graph) == 6.0

    def test_cycle(self):
        assert diameter(cycle_graph(10)) == 5.0

    def test_complete(self):
        assert diameter(complete_graph(6)) == 1.0

    def test_disconnected_eccentricity_infinite(self):
        graph = Graph.from_edges(4, [(0, 1)])
        assert eccentricity(graph, 0) == math.inf

    def test_disconnected_diameter_is_max_component(self):
        graph = Graph.from_edges(7, [(0, 1), (1, 2), (2, 3), (4, 5)])
        assert diameter(graph) == 3.0

    def test_matches_networkx(self):
        graph = connected_gnp(30, 0.15, seed=1)
        assert diameter(graph) == nx.diameter(to_networkx(graph))

    def test_empty_graph(self):
        assert diameter(Graph(5)) == 0.0


class TestGirth:
    def test_forest_has_infinite_girth(self):
        assert girth(path_graph(8)) == math.inf

    def test_cycle_graph(self):
        assert girth(cycle_graph(9)) == 9.0

    def test_complete_graph_triangle(self):
        assert girth(complete_graph(5)) == 3.0

    def test_grid_has_girth_four(self):
        assert girth(grid_graph(3, 4)) == 4.0

    def test_petersen_like_check_vs_networkx(self):
        graph = connected_gnp(24, 0.15, seed=3)
        expected = nx.girth(to_networkx(graph))
        mine = girth(graph)
        if expected == math.inf:
            assert mine == math.inf
        else:
            assert mine == float(expected)

    def test_greedy_spanner_girth_witness(self):
        """The classic size argument: a greedy t-spanner has girth > t+1."""
        from repro.baselines import greedy_spanner

        spanner = greedy_spanner(complete_graph(12), 3)
        assert girth(spanner) > 4.0


class TestDegreeSummary:
    def test_regular_graph(self):
        summary = degree_summary(cycle_graph(8))
        assert summary.minimum == summary.maximum == 2
        assert summary.mean == 2.0
        assert summary.skew() == 1.0

    def test_star_graph(self):
        graph = Graph.from_edges(5, [(0, 1), (0, 2), (0, 3), (0, 4)])
        summary = degree_summary(graph)
        assert summary.maximum == 4
        assert summary.minimum == 1
        assert summary.skew() > 2.0

    def test_power_law_is_skewed(self):
        graph = power_law_graph(100, exponent=2.2, seed=4)
        assert degree_summary(graph).skew() > 3.0

    def test_empty_graph(self):
        summary = degree_summary(Graph(3))
        assert summary.maximum == 0
        assert summary.skew() == 1.0
