"""Tests for workload generators."""

import pytest

from repro.graph.cuts import cut_value, max_cut_discrepancy
from repro.graph.random_graphs import (
    barbell_graph,
    complete_graph,
    connected_gnp,
    cycle_graph,
    disjoint_cliques_with_path,
    grid_graph,
    path_graph,
    power_law_graph,
    random_gnm,
    random_gnp,
    with_random_weights,
)


class TestGenerators:
    def test_gnp_deterministic(self):
        assert random_gnp(30, 0.2, seed=1) == random_gnp(30, 0.2, seed=1)
        assert random_gnp(30, 0.2, seed=1) != random_gnp(30, 0.2, seed=2)

    def test_gnp_density(self):
        graph = random_gnp(60, 0.25, seed=3)
        expected = 0.25 * 60 * 59 / 2
        assert 0.7 * expected < graph.num_edges() < 1.3 * expected

    def test_gnp_extremes(self):
        assert random_gnp(10, 0.0, seed=1).num_edges() == 0
        assert random_gnp(10, 1.0, seed=1).num_edges() == 45

    def test_gnp_invalid_p(self):
        with pytest.raises(ValueError):
            random_gnp(10, 1.5, seed=1)

    def test_gnm_exact_count(self):
        graph = random_gnm(20, 37, seed=4)
        assert graph.num_edges() == 37

    def test_gnm_too_many_edges(self):
        with pytest.raises(ValueError):
            random_gnm(5, 11, seed=1)

    def test_connected_gnp_is_connected(self):
        for seed in range(5):
            assert connected_gnp(40, 0.05, seed=seed).is_connected()

    def test_cycle_and_path(self):
        assert cycle_graph(10).num_edges() == 10
        assert path_graph(10).num_edges() == 9
        assert cycle_graph(10).is_connected()

    def test_grid(self):
        graph = grid_graph(4, 5)
        assert graph.num_vertices == 20
        assert graph.num_edges() == 4 * 4 + 3 * 5  # horizontal + vertical
        assert graph.is_connected()

    def test_complete(self):
        assert complete_graph(7).num_edges() == 21

    def test_barbell(self):
        graph = barbell_graph(5, bridge_length=3)
        assert graph.is_connected()
        # Two K_5s plus 3 bridge edges.
        assert graph.num_edges() == 2 * 10 + 3

    def test_barbell_direct_bridge(self):
        graph = barbell_graph(4)
        assert graph.num_edges() == 2 * 6 + 1
        assert graph.has_edge(0, 4)

    def test_power_law_skew(self):
        graph = power_law_graph(100, exponent=2.2, seed=5)
        degrees = sorted((graph.degree(u) for u in range(100)), reverse=True)
        assert degrees[0] >= 3 * max(1, degrees[50])  # heavy head

    def test_power_law_invalid_exponent(self):
        with pytest.raises(ValueError):
            power_law_graph(10, exponent=1.0, seed=1)

    def test_disjoint_cliques_with_path_connected(self):
        graph = disjoint_cliques_with_path(4, 8, p=0.9, seed=6)
        assert graph.num_vertices == 32
        # The inter-block path contributes exactly num_blocks - 1 edges.
        blocks = [set(range(b * 8, (b + 1) * 8)) for b in range(4)]
        crossing = [
            (u, v)
            for u, v, _ in graph.edges()
            if next(i for i, s in enumerate(blocks) if u in s)
            != next(i for i, s in enumerate(blocks) if v in s)
        ]
        assert len(crossing) == 3

    def test_with_random_weights_range(self):
        graph = with_random_weights(random_gnp(20, 0.3, seed=7), seed=7, w_min=2.0, w_max=8.0)
        for _, _, weight in graph.edges():
            assert 2.0 <= weight <= 8.0

    def test_with_random_weights_validation(self):
        with pytest.raises(ValueError):
            with_random_weights(random_gnp(5, 0.5, seed=1), seed=1, w_min=0.0)


class TestCuts:
    def test_cut_value_path(self):
        graph = path_graph(4)
        assert cut_value(graph, {0, 1}) == 1.0
        assert cut_value(graph, {0, 2}) == 3.0

    def test_cut_value_weighted(self):
        graph = complete_graph(4)
        weighted = with_random_weights(graph, seed=8, w_min=1.0, w_max=1.0)
        assert cut_value(weighted, {0}) == pytest.approx(3.0)

    def test_discrepancy_zero_for_identical(self):
        graph = connected_gnp(20, 0.3, seed=9)
        assert max_cut_discrepancy(graph, graph, trials=50, seed=1) == 0.0

    def test_discrepancy_for_scaled(self):
        graph = connected_gnp(20, 0.3, seed=10)
        scaled = with_random_weights(graph, seed=1, w_min=2.0, w_max=2.0)
        discrepancy = max_cut_discrepancy(graph, scaled, trials=50, seed=1)
        assert discrepancy == pytest.approx(1.0)  # every cut doubled

    def test_discrepancy_infinite_when_cut_created(self):
        base = Graph_from_two_components()
        candidate = base.copy()
        candidate.add_edge(0, 2)
        assert max_cut_discrepancy(base, candidate, trials=200, seed=2) == float("inf")


def Graph_from_two_components():
    from repro.graph.graph import Graph

    graph = Graph(4)
    graph.add_edge(0, 1)
    graph.add_edge(2, 3)
    return graph
