"""Tests for distances and stretch evaluation (cross-checked vs networkx)."""

import math

import networkx as nx
import pytest

from repro.graph.distances import (
    bfs_distances,
    dijkstra_distances,
    distance,
    evaluate_additive_error,
    evaluate_multiplicative_stretch,
)
from repro.graph.graph import Graph
from repro.graph.random_graphs import connected_gnp, cycle_graph, path_graph, with_random_weights


def to_networkx(graph: Graph) -> nx.Graph:
    result = nx.Graph()
    result.add_nodes_from(range(graph.num_vertices))
    for u, v, w in graph.edges():
        result.add_edge(u, v, weight=w)
    return result


class TestBfs:
    def test_path_graph_distances(self):
        graph = path_graph(6)
        assert bfs_distances(graph, 0) == {0: 0, 1: 1, 2: 2, 3: 3, 4: 4, 5: 5}

    def test_unreachable_omitted(self):
        graph = Graph.from_edges(4, [(0, 1)])
        assert 2 not in bfs_distances(graph, 0)

    def test_cutoff_truncates(self):
        graph = path_graph(10)
        found = bfs_distances(graph, 0, cutoff=3)
        assert max(found.values()) == 3
        assert 4 not in found

    def test_matches_networkx_on_random_graph(self):
        graph = connected_gnp(40, 0.1, seed=5)
        expected = nx.single_source_shortest_path_length(to_networkx(graph), 7)
        assert bfs_distances(graph, 7) == dict(expected)


class TestDijkstra:
    def test_weighted_path(self):
        graph = Graph.from_edges(3, [(0, 1, 2.0), (1, 2, 3.0)])
        assert dijkstra_distances(graph, 0) == {0: 0.0, 1: 2.0, 2: 5.0}

    def test_prefers_lighter_detour(self):
        graph = Graph.from_edges(3, [(0, 2, 10.0), (0, 1, 1.0), (1, 2, 1.0)])
        assert dijkstra_distances(graph, 0)[2] == 2.0

    def test_matches_networkx_on_weighted_random_graph(self):
        graph = with_random_weights(connected_gnp(30, 0.15, seed=9), seed=9)
        expected = nx.single_source_dijkstra_path_length(to_networkx(graph), 3)
        mine = dijkstra_distances(graph, 3)
        assert set(mine) == set(expected)
        for node, dist in expected.items():
            assert mine[node] == pytest.approx(dist)

    def test_distance_helper(self):
        graph = path_graph(5)
        assert distance(graph, 0, 4) == 4.0
        assert distance(graph, 0, 0) == 0.0

    def test_distance_disconnected_is_inf(self):
        graph = Graph.from_edges(3, [(0, 1)])
        assert distance(graph, 0, 2) == math.inf


class TestStretchEvaluation:
    def test_identical_graph_stretch_one(self):
        graph = connected_gnp(20, 0.3, seed=1)
        report = evaluate_multiplicative_stretch(graph, graph)
        assert report.max_stretch == pytest.approx(1.0)
        assert report.within(1.0)

    def test_cycle_minus_edge(self):
        graph = cycle_graph(10)
        spanner = graph.copy()
        spanner.remove_edge(0, 9)
        report = evaluate_multiplicative_stretch(graph, spanner)
        assert report.max_stretch == pytest.approx(9.0)

    def test_disconnection_gives_infinite_stretch(self):
        graph = path_graph(4)
        spanner = Graph(4)
        report = evaluate_multiplicative_stretch(graph, spanner)
        assert report.max_stretch == math.inf
        assert not report.within(100.0)

    def test_sampled_pairs_subset(self):
        graph = connected_gnp(30, 0.2, seed=2)
        report = evaluate_multiplicative_stretch(graph, graph, sample_pairs=25, seed=3)
        assert 0 < report.pairs_checked <= 25
        assert report.max_stretch == pytest.approx(1.0)

    def test_weighted_stretch(self):
        graph = Graph.from_edges(3, [(0, 1, 1.0), (1, 2, 1.0), (0, 2, 2.0)])
        spanner = Graph.from_edges(3, [(0, 1, 1.0), (1, 2, 1.0)])
        report = evaluate_multiplicative_stretch(graph, spanner, weighted=True)
        assert report.max_stretch == pytest.approx(1.0)  # path 0-1-2 matches weight 2

    def test_additive_error_cycle(self):
        graph = cycle_graph(12)
        spanner = graph.copy()
        spanner.remove_edge(0, 11)
        error, checked = evaluate_additive_error(graph, spanner)
        assert error == 10.0  # worst pair (0, 11): 11 hops vs 1
        assert checked > 0

    def test_additive_error_zero_for_same_graph(self):
        graph = connected_gnp(25, 0.2, seed=4)
        error, _ = evaluate_additive_error(graph, graph)
        assert error == 0.0
