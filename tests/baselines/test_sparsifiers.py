"""Tests for the sparsifier baselines (Spielman–Srivastava, AGM-style)."""

import pytest

from repro.baselines.agm_sparsifier import AgmCutSparsifier
from repro.baselines.spielman_srivastava import spielman_srivastava_sparsifier
from repro.graph.cuts import max_cut_discrepancy
from repro.graph.graph import Graph
from repro.graph.laplacian import spectral_approximation
from repro.graph.random_graphs import (
    barbell_graph,
    complete_graph,
    connected_gnp,
    with_random_weights,
)
from repro.stream.generators import stream_from_graph
from repro.stream.pipeline import run_passes


class TestSpielmanSrivastava:
    def test_spectral_quality_on_dense_graph(self):
        graph = complete_graph(40)
        sparsifier = spielman_srivastava_sparsifier(graph, eps=0.5, seed=1)
        bounds = spectral_approximation(graph, sparsifier)
        assert bounds.low > 0.3
        assert bounds.high < 1.9

    def test_sparsifies_dense_graph(self):
        # At laptop n the theory constant saturates p_e = 1, so use the
        # bare sampling rate (oversample=1) to observe the reduction.
        graph = complete_graph(60)
        sparsifier = spielman_srivastava_sparsifier(graph, eps=1.0, seed=2, oversample=1.0)
        assert sparsifier.num_edges() < graph.num_edges() / 2

    def test_keeps_bridges(self):
        # A bridge has w_e * R_e = 1: sampled with probability 1.
        graph = barbell_graph(8)
        sparsifier = spielman_srivastava_sparsifier(graph, eps=0.5, seed=3)
        assert sparsifier.has_edge(0, 8)

    def test_tree_kept_entirely(self):
        # Every tree edge has p_e = 1.
        from repro.graph.random_graphs import path_graph

        graph = path_graph(20)
        sparsifier = spielman_srivastava_sparsifier(graph, eps=0.3, seed=4)
        assert sparsifier.edge_set() == graph.edge_set()

    def test_weighted_input(self):
        graph = with_random_weights(connected_gnp(25, 0.4, seed=5), seed=5)
        sparsifier = spielman_srivastava_sparsifier(graph, eps=0.5, seed=6)
        bounds = spectral_approximation(graph, sparsifier)
        assert bounds.low > 0.2
        assert bounds.high < 2.2

    def test_cut_preservation(self):
        graph = complete_graph(40)
        sparsifier = spielman_srivastava_sparsifier(graph, eps=0.5, seed=7)
        assert max_cut_discrepancy(graph, sparsifier, trials=100, seed=8) < 0.6

    def test_invalid_eps(self):
        with pytest.raises(ValueError):
            spielman_srivastava_sparsifier(Graph(3), eps=0.0, seed=1)


class TestAgmCutSparsifier:
    def run(self, graph, seed=1, **kwargs):
        stream = stream_from_graph(graph, seed=seed, churn=0.3)
        algorithm = AgmCutSparsifier(graph.num_vertices, seed=seed, **kwargs)
        return run_passes(stream, algorithm)

    def test_single_pass_declared(self):
        assert AgmCutSparsifier(8, seed=1).passes_required == 1

    def test_connectivity_preserved(self):
        graph = connected_gnp(24, 0.15, seed=10)
        sparsifier = self.run(graph, seed=11)
        assert sparsifier.is_connected()

    def test_output_is_subgraph(self):
        graph = connected_gnp(24, 0.15, seed=12)
        sparsifier = self.run(graph, seed=13)
        for u, v, _ in sparsifier.edges():
            assert graph.has_edge(u, v)

    def test_sparsifies_dense_graph(self):
        graph = complete_graph(32)
        sparsifier = self.run(graph, seed=14, certificate_size=4)
        assert sparsifier.num_edges() < graph.num_edges()

    def test_cut_quality_loose(self):
        """The simplified baseline is only expected to be in the right
        ballpark — within a constant factor on sampled cuts."""
        graph = connected_gnp(28, 0.3, seed=15)
        sparsifier = self.run(graph, seed=16, certificate_size=6)
        discrepancy = max_cut_discrepancy(graph, sparsifier, trials=60, seed=17)
        assert discrepancy < 4.0

    def test_space_words_positive(self):
        assert AgmCutSparsifier(8, seed=1).space_words() > 0
