"""Tests for the spanner baselines (Baswana–Sen, greedy, Thorup–Zwick)."""

import math

import pytest

from repro.baselines.baswana_sen import baswana_sen_spanner
from repro.baselines.greedy_spanner import greedy_spanner
from repro.baselines.thorup_zwick import ThorupZwickOracle
from repro.graph.distances import distance, evaluate_multiplicative_stretch
from repro.graph.graph import Graph
from repro.graph.random_graphs import (
    complete_graph,
    connected_gnp,
    cycle_graph,
    random_gnp,
    with_random_weights,
)


class TestBaswanaSen:
    @pytest.mark.parametrize("k", [1, 2, 3])
    def test_stretch_bound_unweighted(self, k):
        graph = connected_gnp(40, 0.2, seed=k)
        spanner = baswana_sen_spanner(graph, k, seed=10 + k)
        report = evaluate_multiplicative_stretch(graph, spanner)
        assert report.within(2 * k - 1)

    @pytest.mark.parametrize("k", [2, 3])
    def test_stretch_bound_weighted(self, k):
        graph = with_random_weights(connected_gnp(30, 0.25, seed=k), seed=k)
        spanner = baswana_sen_spanner(graph, k, seed=20 + k)
        report = evaluate_multiplicative_stretch(graph, spanner, weighted=True)
        assert report.within(2 * k - 1)

    def test_k1_returns_whole_graph(self):
        graph = connected_gnp(20, 0.3, seed=5)
        spanner = baswana_sen_spanner(graph, 1, seed=6)
        assert spanner.edge_set() == graph.edge_set()

    def test_size_reduction_on_dense_graph(self):
        graph = complete_graph(40)
        spanner = baswana_sen_spanner(graph, 2, seed=7)
        # K_40 has 780 edges; a 3-spanner should be well below half.
        assert spanner.num_edges() < 390

    def test_size_close_to_theory_bound(self):
        n, k = 60, 3
        graph = complete_graph(n)
        sizes = [
            baswana_sen_spanner(graph, k, seed=s).num_edges() for s in range(5)
        ]
        bound = 6 * k * n ** (1 + 1 / k)  # generous constant over E[size]
        assert sum(sizes) / len(sizes) < bound

    def test_spanner_is_subgraph(self):
        graph = connected_gnp(30, 0.3, seed=8)
        spanner = baswana_sen_spanner(graph, 2, seed=9)
        for u, v, w in spanner.edges():
            assert graph.has_edge(u, v)
            assert graph.weight(u, v) == w

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            baswana_sen_spanner(Graph(3), 0, seed=1)


class TestGreedySpanner:
    @pytest.mark.parametrize("stretch", [1, 3, 5])
    def test_stretch_guarantee(self, stretch):
        graph = connected_gnp(30, 0.25, seed=stretch)
        spanner = greedy_spanner(graph, stretch)
        report = evaluate_multiplicative_stretch(graph, spanner)
        assert report.within(stretch)

    def test_weighted_stretch_guarantee(self):
        graph = with_random_weights(connected_gnp(25, 0.3, seed=4), seed=4)
        spanner = greedy_spanner(graph, 3.0)
        report = evaluate_multiplicative_stretch(graph, spanner, weighted=True)
        assert report.within(3.0)

    def test_stretch_one_keeps_cycle_chords(self):
        graph = cycle_graph(8)
        spanner = greedy_spanner(graph, 1.0)
        assert spanner.edge_set() == graph.edge_set()

    def test_girth_property(self):
        # A greedy t-spanner has girth > t + 1: check no triangles for t=3.
        graph = complete_graph(15)
        spanner = greedy_spanner(graph, 3)
        edges = spanner.edge_set()
        for u, v in edges:
            common = set(spanner.neighbors(u)) & set(spanner.neighbors(v))
            assert not common, f"triangle through {(u, v)}"

    def test_sparser_than_input(self):
        graph = complete_graph(30)
        assert greedy_spanner(graph, 3).num_edges() < graph.num_edges() / 2

    def test_invalid_stretch(self):
        with pytest.raises(ValueError):
            greedy_spanner(Graph(3), 0.5)


class TestThorupZwick:
    @pytest.mark.parametrize("k", [1, 2, 3])
    def test_stretch_guarantee(self, k):
        graph = connected_gnp(30, 0.2, seed=30 + k)
        oracle = ThorupZwickOracle(graph, k, seed=40 + k)
        for u in range(0, 30, 5):
            for v in range(1, 30, 7):
                if u == v:
                    continue
                true = distance(graph, u, v)
                estimate = oracle.query(u, v)
                assert true <= estimate + 1e-9
                assert estimate <= (2 * k - 1) * true + 1e-9

    def test_weighted_queries(self):
        graph = with_random_weights(connected_gnp(25, 0.25, seed=50), seed=50)
        oracle = ThorupZwickOracle(graph, 2, seed=51)
        for u, v in [(0, 10), (3, 17), (5, 24)]:
            true = distance(graph, u, v, weighted=True)
            estimate = oracle.query(u, v)
            assert true <= estimate + 1e-9
            assert estimate <= 3 * true + 1e-9

    def test_same_vertex_zero(self):
        graph = connected_gnp(10, 0.4, seed=52)
        oracle = ThorupZwickOracle(graph, 2, seed=53)
        assert oracle.query(4, 4) == 0.0

    def test_disconnected_pairs_infinite(self):
        graph = Graph.from_edges(4, [(0, 1), (2, 3)])
        oracle = ThorupZwickOracle(graph, 2, seed=54)
        assert oracle.query(0, 2) == math.inf

    def test_k1_is_exact(self):
        graph = connected_gnp(15, 0.3, seed=55)
        oracle = ThorupZwickOracle(graph, 1, seed=56)
        for u in range(15):
            for v in range(u + 1, 15):
                assert oracle.query(u, v) == pytest.approx(distance(graph, u, v))

    def test_space_entries_shrink_with_k(self):
        graph = random_gnp(60, 0.3, seed=57)
        exact = ThorupZwickOracle(graph, 1, seed=58)
        compressed = ThorupZwickOracle(graph, 3, seed=58)
        assert compressed.space_entries() < exact.space_entries()

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            ThorupZwickOracle(Graph(3), 0, seed=1)
