"""The adaptive sizing ladder: growth without re-ingest, bit-identically.

The claim under test (the linearity argument of
:mod:`repro.service.ladder`): a session that starts at a small capacity
rung and promotes itself as the touched set grows ends with the *same
answers* as a session provisioned at the final size up front — across
every query family, after checkpoints, and after further ingest.
"""

import random

import pytest

from repro import obs
from repro.core import SpannerParams, SparsifierParams
from repro.graph import VertexSpace
from repro.service import (
    CheckpointStore,
    GraphSession,
    SketchLadder,
    rounds_for_capacity,
)
from repro.stream.updates import EdgeUpdate

SLIM = SparsifierParams(
    estimate_reps_factor=0.01, estimate_levels=1, sampling_levels=1,
    sampling_rounds_factor=0.001,
)
SLIM_SPANNER = SpannerParams(table_stacks=1, table_capacity_factor=0.75)


def growing_updates(vertices, edges, seed):
    rng = random.Random(seed)
    out = []
    for _ in range(edges):
        u = rng.randrange(vertices)
        v = rng.randrange(vertices)
        if u != v:
            out.append(EdgeUpdate(u, v, +1))
    return out


def ladder_session(ladder, seed=42, universe=1 << 14):
    return GraphSession(
        VertexSpace.sparse(universe),
        seed,
        sparsifier_params=SLIM,
        spanner_params=SLIM_SPANNER,
        ladder=ladder,
    )


# -- the ladder object itself ------------------------------------------


def test_rounds_for_capacity_shape():
    assert rounds_for_capacity(1) == 4
    assert rounds_for_capacity(2) == 4
    assert rounds_for_capacity(1024) == 12
    assert rounds_for_capacity(10**6) == 22
    with pytest.raises(ValueError):
        rounds_for_capacity(0)


def test_ladder_rungs_are_powers_of_two():
    ladder = SketchLadder(start_capacity=100)
    assert ladder.rung == 128  # rounded up
    assert not ladder.should_promote(128)
    assert ladder.should_promote(129)
    assert ladder.rung_for(129) == 256
    # One promotion jumps straight past several rungs.
    assert ladder.rung_for(5000) == 8192
    assert ladder.promote_to(8192) == rounds_for_capacity(8192)
    assert ladder.rung == 8192 and ladder.promotions == 1


def test_ladder_respects_max_capacity():
    ladder = SketchLadder(start_capacity=64, max_capacity=256)
    assert ladder.rung_for(10**6) == 256
    assert ladder.should_promote(65)
    ladder.promote_to(256)
    assert not ladder.should_promote(10**9)  # at the ceiling: stop


def test_ladder_config_round_trip():
    ladder = SketchLadder(start_capacity=64, max_capacity=4096)
    ladder.promote_to(512)
    twin = SketchLadder.from_config(ladder.config())
    assert twin.config() == ladder.config()


def test_ladder_rejects_bad_arguments():
    with pytest.raises(ValueError):
        SketchLadder(start_capacity=0)
    with pytest.raises(ValueError):
        SketchLadder(start_capacity=64, max_capacity=32)
    ladder = SketchLadder(start_capacity=64)
    with pytest.raises(ValueError):
        ladder.promote_to(64)  # not above the current rung


# -- session integration -----------------------------------------------


def test_ladder_and_agm_rounds_are_exclusive():
    with pytest.raises(ValueError, match="not both"):
        GraphSession(
            VertexSpace.sparse(1 << 14), 7,
            agm_rounds=8, ladder=SketchLadder(),
        )


def test_grown_session_matches_upfront_session():
    """The acceptance property: start small, grow across several rungs,
    and answer every query family bit-identically to a session sized
    for the final rung from the start — without re-ingesting."""
    updates = growing_updates(400, 600, seed=11)
    deletes = [EdgeUpdate(u.u, u.v, -1) for u in updates[:120]]

    ladder = SketchLadder(start_capacity=16)
    grown = ladder_session(ladder)
    for start in range(0, len(updates), 100):
        grown.ingest_batch(updates[start : start + 100])
    grown.ingest_batch(deletes)
    assert ladder.promotions >= 2  # actually climbed several rungs
    assert ladder.rung >= 256

    upfront = GraphSession(
        VertexSpace.sparse(1 << 14), 42,
        sparsifier_params=SLIM,
        spanner_params=SLIM_SPANNER,
        agm_rounds=rounds_for_capacity(ladder.rung),
    )
    upfront.ingest_batch(updates)
    upfront.ingest_batch(deletes)

    assert grown.snapshot_answers() == upfront.snapshot_answers()
    # Per-query-family spot checks (the structured query surface too).
    assert grown.connected(updates[0].u, updates[0].v) == upfront.connected(
        updates[0].u, updates[0].v
    )
    d1 = grown.spanner_distance(updates[0].u, updates[1].u)
    d2 = upfront.spanner_distance(updates[0].u, updates[1].u)
    assert d1 == d2
    side = {u.u for u in updates[:50]}
    assert grown.cut_estimate(side) == upfront.cut_estimate(side)


def test_promotion_counters_and_stats():
    ladder = SketchLadder(start_capacity=64)
    session = ladder_session(ladder)
    tracer = obs.Tracer()
    previous = obs.set_tracer(tracer)
    try:
        session.ingest_batch(growing_updates(500, 600, seed=3))
    finally:
        obs.set_tracer(previous)
    stats = session.stats()
    assert stats.ladder_promotions == ladder.promotions >= 1
    assert stats.ladder_rung == ladder.rung
    assert tracer.counters.get("session.ladder.promote", 0) == ladder.promotions
    # Sessions without a ladder report zeros, not None.
    plain = GraphSession(64, 7, sparsifier_params=SLIM)
    assert plain.stats().ladder_promotions == 0
    assert plain.stats().ladder_rung == 0


def test_promotion_derives_rounds_from_rung():
    ladder = SketchLadder(start_capacity=64)
    session = ladder_session(ladder)
    assert session.agm_rounds == rounds_for_capacity(64)
    session.ingest_batch(growing_updates(800, 900, seed=5))
    assert ladder.promotions >= 1
    assert session.agm_rounds == rounds_for_capacity(ladder.rung)
    assert session._connectivity._sketch.rounds == session.agm_rounds


def test_checkpoint_round_trips_promoted_ladder(tmp_path):
    ladder = SketchLadder(start_capacity=16)
    session = ladder_session(ladder)
    updates = growing_updates(400, 500, seed=9)
    session.ingest_batch(updates[:350])
    assert ladder.promotions >= 1

    store = CheckpointStore(tmp_path / "ckpts")
    store.save(session)
    restored = store.load_latest()
    assert restored.ladder is not None
    assert restored.ladder.config() == ladder.config()
    assert restored.agm_rounds == session.agm_rounds

    # The restored session keeps promoting as the stream grows further.
    session.ingest_batch(updates[900:])
    restored.ingest_batch(updates[900:])
    assert restored.ladder.config() == ladder.config()
    assert restored.snapshot_answers() == session.snapshot_answers()


def test_pre_ladder_checkpoints_still_restore(tmp_path):
    """A header without the "ladder" key (<= PR 9 files) restores to a
    ladderless session — back-compat via header.get."""
    session = GraphSession(64, 7, sparsifier_params=SLIM, agm_rounds=8)
    session.ingest_batch(growing_updates(64, 80, seed=1))
    path = tmp_path / "ck.bin"
    session.checkpoint(path)

    import json
    import struct
    import zlib

    from repro.service import checkpoint as ckpt

    data = path.read_bytes()
    header_bytes, cursor = ckpt._read_section(path, data, len(ckpt.MAGIC), "header")
    payload, _ = ckpt._read_section(path, data, cursor, "payload")
    header = json.loads(header_bytes)
    assert header["ladder"] is None
    del header["ladder"]  # forge a pre-ladder header
    forged_header = json.dumps(header, sort_keys=True).encode("utf-8")
    frame = struct.Struct(">II")
    with open(path, "wb") as handle:
        handle.write(ckpt.MAGIC)
        handle.write(frame.pack(len(forged_header), zlib.crc32(forged_header) & 0xFFFFFFFF))
        handle.write(forged_header)
        handle.write(frame.pack(len(payload), zlib.crc32(payload) & 0xFFFFFFFF))
        handle.write(payload)

    restored = GraphSession.restore(path)
    assert restored.ladder is None
    assert restored.snapshot_answers() == session.snapshot_answers()
