"""Tests for workload scenarios and the measuring driver."""

import pytest

from repro.core import SparsifierParams
from repro.service import SCENARIOS, GraphSession, WorkloadDriver, scenario_ops
from repro.stream import mixed_session_ops, mixed_workload_stream

SLIM = SparsifierParams(estimate_levels=2, sampling_levels=2, sampling_rounds_factor=0.01)


class TestGenerators:
    def test_mixed_workload_stream_is_model_valid_and_deterministic(self):
        first = mixed_workload_stream(10, 500, seed=1, delete_fraction=0.4)
        second = mixed_workload_stream(10, 500, seed=1, delete_fraction=0.4)
        assert list(first) == list(second)
        assert len(first) == 500
        assert first.num_deletions() > 0

    def test_burst_mode_deletes_in_storms(self):
        calm = mixed_workload_stream(10, 2000, seed=2, delete_fraction=0.1)
        bursty = mixed_workload_stream(
            10, 2000, seed=2, delete_fraction=0.1, burst_every=400, burst_length=150
        )
        assert bursty.num_deletions() > calm.num_deletions()

    def test_weighted_stream_weights_in_range(self):
        stream = mixed_workload_stream(10, 300, seed=3, weights=(2.0, 5.0))
        weights = {update.weight for update in stream}
        assert all(2.0 <= w <= 5.0 for w in weights)
        assert len(weights) > 1

    def test_exhausted_pair_space_fails_loudly_instead_of_hanging(self):
        with pytest.raises(ValueError, match="at least 2 vertices"):
            mixed_workload_stream(1, 10, seed=1)
        # One pair, deletes disabled: after the single insert no token
        # can ever be emitted — the progress guard must raise.
        with pytest.raises(ValueError, match="cannot generate"):
            mixed_workload_stream(2, 10, seed=1, delete_fraction=0.0)

    def test_bad_arguments_rejected(self):
        with pytest.raises(ValueError):
            mixed_workload_stream(10, -1, seed=1)
        with pytest.raises(ValueError):
            mixed_workload_stream(10, 10, seed=1, delete_fraction=1.0)
        with pytest.raises(ValueError):
            mixed_workload_stream(10, 10, seed=1, burst_every=5)
        with pytest.raises(ValueError):
            mixed_session_ops(10, 10, seed=1, query_every=-1)
        with pytest.raises(ValueError):
            mixed_session_ops(10, 10, seed=1, query_every=5, query_kinds=())
        with pytest.raises(ValueError):
            scenario_ops("nope", 10, 100, seed=1)

    def test_ops_cover_all_tokens_in_order(self):
        ops = mixed_session_ops(10, 700, seed=4, query_every=150, ingest_chunk=64)
        replayed = [u for op in ops if op[0] == "ingest" for u in op[1]]
        assert replayed == list(mixed_workload_stream(10, 700, seed=4))
        kinds = [op[1] for op in ops if op[0] == "query"]
        assert kinds  # queries interleaved
        assert set(kinds) <= {"connected", "forest", "spanner_distance", "cut"}

    def test_query_repeats_emit_back_to_back(self):
        ops = mixed_session_ops(
            10, 300, seed=5, query_every=100, query_repeats=3,
            query_kinds=("connected",),
        )
        queries = [op for op in ops if op[0] == "query"]
        assert len(queries) == 9
        assert queries[0] == queries[1] == queries[2]


class TestDriver:
    def test_scenarios_run_and_report(self, tmp_path):
        for name in SCENARIOS:
            session = GraphSession(
                10, f"wl-{name}", sparsifier_k=1, sparsifier_params=SLIM
            )
            ops = scenario_ops(name, 10, 600, seed=6)
            report = WorkloadDriver(
                session, checkpoint_every=300, checkpoint_dir=tmp_path / name
            ).run(ops, scenario=name)
            assert report.updates == 600
            assert report.queries > 0
            assert report.checkpoints >= 1
            assert report.ingest_rate > 0
            assert report.cache_hits > 0  # query_repeats land in the cache
            table = report.table()
            assert name in table and "updates/s" in table

    def test_disabled_slots_are_skipped_not_failed(self):
        session = GraphSession(10, "wl-skip", enable_spanner=False,
                               enable_sparsifier=False)
        ops = scenario_ops("mixed", 10, 400, seed=7)
        report = WorkloadDriver(session).run(ops)
        assert report.skipped_queries > 0
        assert "spanner_distance" not in report.latencies
        assert "cut" not in report.latencies

    def test_driver_argument_validation(self, tmp_path):
        session = GraphSession(6, 1, enable_spanner=False, enable_sparsifier=False)
        with pytest.raises(ValueError):
            WorkloadDriver(session, checkpoint_every=-1)
        with pytest.raises(ValueError):
            WorkloadDriver(session, checkpoint_every=10)  # no dir
        driver = WorkloadDriver(session)
        with pytest.raises(ValueError, match="unknown op"):
            driver.run([("frobnicate", ())])
        with pytest.raises(ValueError, match="unknown query kind"):
            driver.run([("query", "nope", ())])

    def test_checkpoints_are_restorable(self, tmp_path):
        from repro.service import load_session

        session = GraphSession(10, "wl-ck", enable_spanner=False,
                               enable_sparsifier=False)
        ops = mixed_session_ops(10, 500, seed=8, query_every=200)
        report = WorkloadDriver(
            session, checkpoint_every=250, checkpoint_dir=tmp_path
        ).run(ops)
        assert report.last_checkpoint is not None
        restored = load_session(report.last_checkpoint)
        assert restored.num_live_edges() > 0
