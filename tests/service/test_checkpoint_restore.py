"""Failure injection for the sketch store: crash, restore, bit-identity.

The durability claim: a session killed at *any* epoch and restored from
its checkpoint finishes the stream with answers bit-identical to a
session that never crashed.  These tests crash at seeded random epochs
for every algorithm slot combination, over unweighted and weighted
mixed workloads (the generator of
:func:`repro.stream.generators.mixed_workload_stream`), and compare both
the decoded answers and the raw serialized sketch states.
"""

import pytest

from repro.core import SparsifierParams
from repro.service import CheckpointError, GraphSession, load_session
from repro.stream import mixed_workload_stream
from repro.util.rng import rng_from_seed

SLIM = SparsifierParams(estimate_levels=2, sampling_levels=2, sampling_rounds_factor=0.01)

#: (name, session kwargs, weighted stream?) — the three algorithms each
#: get a dedicated crash/restore run, plus the weighted pipeline.
CONFIGS = [
    ("connectivity", dict(enable_spanner=False, enable_sparsifier=False), False),
    ("spanner", dict(enable_sparsifier=False), False),
    ("sparsifier", dict(enable_spanner=False, sparsifier_k=1,
                        sparsifier_params=SLIM), False),
    ("all-unweighted", dict(sparsifier_k=1, sparsifier_params=SLIM), False),
    ("connectivity-weighted", dict(enable_spanner=False, enable_sparsifier=False,
                                   weight_bounds=(1.0, 8.0)), True),
    ("spanner-weighted", dict(enable_sparsifier=False,
                              weight_bounds=(1.0, 8.0)), True),
    ("sparsifier-weighted", dict(enable_spanner=False, sparsifier_k=1,
                                 sparsifier_params=SLIM,
                                 weight_bounds=(1.0, 8.0)), True),
]

NUM_VERTICES = 12
STREAM_LENGTH = 480
CHUNK = 40


def final_answers(session):
    answers = session.snapshot_answers()
    # Stronger than the decoded answers: the exact ledger and the raw
    # serialized sketch states must also round-trip.
    answers["ledger"] = sorted(session.live_graph().edges())
    answers["states"] = [list(a.shard_state_ints(0)) for a in session._algorithms()]
    return answers


@pytest.mark.parametrize("name,kwargs,weighted", CONFIGS,
                         ids=[config[0] for config in CONFIGS])
def test_crash_restore_bit_identity(tmp_path, name, kwargs, weighted):
    tokens = list(
        mixed_workload_stream(
            NUM_VERTICES, STREAM_LENGTH, seed=f"crash-{name}",
            weights=(1.0, 8.0) if weighted else None,
        )
    )

    def run_uninterrupted():
        session = GraphSession(NUM_VERTICES, f"ck-{name}", **kwargs)
        for start in range(0, len(tokens), CHUNK):
            session.ingest_batch(tokens[start : start + CHUNK])
        return final_answers(session)

    reference = run_uninterrupted()

    rng = rng_from_seed("crash-epochs", name)
    total_chunks = len(tokens) // CHUNK
    crash_chunks = sorted(rng.sample(range(1, total_chunks), 2))
    for crash_chunk in crash_chunks:
        session = GraphSession(NUM_VERTICES, f"ck-{name}", **kwargs)
        for start in range(0, crash_chunk * CHUNK, CHUNK):
            session.ingest_batch(tokens[start : start + CHUNK])
        path = tmp_path / f"{name}-{crash_chunk}.bin"
        session.checkpoint(path)
        del session  # the crash

        restored = load_session(path)
        assert restored.updates_ingested == crash_chunk * CHUNK
        for start in range(crash_chunk * CHUNK, len(tokens), CHUNK):
            restored.ingest_batch(tokens[start : start + CHUNK])
        assert final_answers(restored) == reference, (
            f"{name}: restore at chunk {crash_chunk} diverged"
        )


def test_checkpoint_preserves_mid_session_weights(tmp_path):
    session = GraphSession(8, 1, enable_spanner=False, enable_sparsifier=False,
                           weight_bounds=(0.5, 16.0))
    stream = mixed_workload_stream(8, 120, seed=2, weights=(0.5, 16.0))
    session.ingest_batch(list(stream))
    path = tmp_path / "weighted.bin"
    session.checkpoint(path)
    restored = load_session(path)
    # Exact float64 round trip, not approximate.
    assert sorted(restored.live_graph().edges()) == sorted(session.live_graph().edges())
    assert restored.weight_bounds == session.weight_bounds


def test_restore_continues_epoch_and_counters(tmp_path):
    session = GraphSession(8, 3, enable_spanner=False, enable_sparsifier=False)
    stream = mixed_workload_stream(8, 90, seed=4)
    for chunk in stream.iter_batches(30):
        session.ingest_batch(chunk)
    path = tmp_path / "counters.bin"
    session.checkpoint(path)
    restored = load_session(path)
    assert restored.epoch == session.epoch
    assert restored.updates_ingested == session.updates_ingested
    assert restored.num_live_edges() == session.num_live_edges()


def test_corrupt_and_missing_checkpoints_raise(tmp_path):
    with pytest.raises(CheckpointError, match="cannot read"):
        load_session(tmp_path / "missing.bin")
    bogus = tmp_path / "bogus.bin"
    bogus.write_bytes(b"not a checkpoint")
    with pytest.raises(CheckpointError, match="not a sketch-store checkpoint"):
        load_session(bogus)
    session = GraphSession(6, 5, enable_spanner=False, enable_sparsifier=False)
    session.ingest_batch(list(mixed_workload_stream(6, 40, seed=6)))
    path = tmp_path / "truncated.bin"
    session.checkpoint(path)
    data = path.read_bytes()
    path.write_bytes(data[: len(data) - 7])
    with pytest.raises(CheckpointError):
        load_session(path)


def test_checkpoint_overwrite_is_atomic(tmp_path):
    session = GraphSession(6, 7, enable_spanner=False, enable_sparsifier=False)
    session.ingest_batch(list(mixed_workload_stream(6, 40, seed=8)))
    path = tmp_path / "atomic.bin"
    session.checkpoint(path)
    first = path.read_bytes()
    session.checkpoint(path)  # same state: replaces with identical bytes
    assert path.read_bytes() == first
    assert not path.with_name(path.name + ".tmp").exists()
