"""Tests for the live sketch-store session (repro.service.session)."""

import pytest

from repro.core import SparsifierParams, TwoPassSpannerBuilder
from repro.graph.cuts import cut_value
from repro.service import GraphSession
from repro.stream import DynamicStream, EdgeUpdate, mixed_workload_stream
from repro.util.rng import derive_seed

#: Slim sparsifier constants so sessions finalize in test time.
SLIM = SparsifierParams(estimate_levels=2, sampling_levels=2, sampling_rounds_factor=0.01)


def make_session(n=14, seed=7, **kwargs):
    kwargs.setdefault("sparsifier_k", 1)
    kwargs.setdefault("sparsifier_params", SLIM)
    return GraphSession(n, seed, **kwargs)


class TestIngestAndLedger:
    def test_ledger_tracks_live_graph(self):
        session = make_session(enable_spanner=False, enable_sparsifier=False)
        stream = mixed_workload_stream(14, 600, seed=3)
        session.ingest_batch(list(stream))
        assert session.live_graph() == stream.final_graph()
        assert session.num_live_edges() == stream.final_graph().num_edges()

    def test_epoch_advances_per_batch(self):
        session = make_session(enable_spanner=False, enable_sparsifier=False)
        assert session.epoch == 0
        session.ingest(EdgeUpdate(0, 1, +1))
        session.ingest_batch([EdgeUpdate(1, 2, +1), EdgeUpdate(2, 3, +1)])
        assert session.epoch == 2
        assert session.updates_ingested == 3
        session.ingest_batch([])  # no-op: nothing to invalidate
        assert session.epoch == 2

    def test_negative_multiplicity_rejected_atomically(self):
        session = make_session(enable_spanner=False, enable_sparsifier=False)
        session.ingest(EdgeUpdate(0, 1, +1))
        state_before = session._connectivity.shard_state_ints(0)
        with pytest.raises(ValueError, match="negative"):
            session.ingest_batch([EdgeUpdate(1, 2, +1), EdgeUpdate(3, 4, -1)])
        # The bad batch must not have half-landed: ledger, epoch and
        # sketch state all unchanged.
        assert session.epoch == 1
        assert session.num_live_edges() == 1
        assert session._connectivity.shard_state_ints(0) == state_before

    def test_turnstile_weight_change_rejected(self):
        session = make_session(weight_bounds=(1.0, 4.0), enable_spanner=False,
                               enable_sparsifier=False)
        session.ingest(EdgeUpdate(0, 1, +1, 2.0))
        with pytest.raises(ValueError, match="turnstile"):
            session.ingest(EdgeUpdate(0, 1, +1, 3.0))

    def test_unweighted_session_rejects_weights(self):
        session = make_session(enable_spanner=False, enable_sparsifier=False)
        with pytest.raises(ValueError, match="weight_bounds"):
            session.ingest(EdgeUpdate(0, 1, +1, 2.0))

    def test_out_of_range_vertices_rejected(self):
        session = make_session(n=4, enable_spanner=False, enable_sparsifier=False)
        with pytest.raises(ValueError, match="outside"):
            session.ingest(EdgeUpdate(0, 9, +1))

    def test_insert_delete_reinsert_with_new_weight(self):
        session = make_session(weight_bounds=(1.0, 4.0), enable_spanner=False,
                               enable_sparsifier=False)
        session.ingest_batch([
            EdgeUpdate(0, 1, +1, 2.0),
            EdgeUpdate(0, 1, -1, 2.0),
            EdgeUpdate(0, 1, +1, 3.0),
        ])
        assert session.live_graph().weight(0, 1) == 3.0


class TestConnectivityQueries:
    def test_components_match_ground_truth(self):
        session = make_session(enable_spanner=False, enable_sparsifier=False)
        stream = mixed_workload_stream(14, 800, seed=5, delete_fraction=0.4)
        tokens = list(stream)
        for start in range(0, len(tokens), 200):
            session.ingest_batch(tokens[start : start + 200])
            truth = DynamicStream(14, tokens[: start + 200]).final_graph()
            assert sorted(map(sorted, session.components())) == sorted(
                map(sorted, truth.connected_components())
            )

    def test_connected_pairs(self):
        session = make_session(enable_spanner=False, enable_sparsifier=False)
        session.ingest_batch([EdgeUpdate(0, 1, +1), EdgeUpdate(2, 3, +1)])
        assert session.connected(0, 1)
        assert not session.connected(0, 2)
        with pytest.raises(ValueError):
            session.connected(0, 99)

    def test_forest_spans_components(self):
        session = make_session(enable_spanner=False, enable_sparsifier=False)
        stream = mixed_workload_stream(14, 500, seed=9)
        session.ingest_batch(list(stream))
        forest = session.spanning_forest()
        truth = stream.final_graph()
        assert len(forest) == 14 - len(truth.connected_components())
        for a, b in forest:
            assert truth.has_edge(a, b)


class TestSnapshotQueries:
    def test_spanner_snapshot_equals_full_two_pass_run(self):
        """The linearity claim behind mid-stream spanner queries: the
        synthesized pass 2 over the net multiset lands in the exact state
        of a genuine two-pass run over the whole history."""
        session = make_session(enable_sparsifier=False)
        tokens = list(mixed_workload_stream(14, 700, seed=11, delete_fraction=0.4))
        session.ingest_batch(tokens)
        snapshot = session.spanner_snapshot()
        reference = TwoPassSpannerBuilder(
            14, 2, derive_seed(7, "session", "spanner")
        ).run(DynamicStream(14, tokens), batch_size=128)
        assert snapshot.spanner.edge_set() == reference.spanner.edge_set()

    def test_spanner_stretch_holds_mid_stream(self):
        from repro.graph import evaluate_multiplicative_stretch

        session = make_session(enable_sparsifier=False)
        tokens = list(mixed_workload_stream(14, 900, seed=13))
        for start in range(0, len(tokens), 300):
            session.ingest_batch(tokens[start : start + 300])
            report = evaluate_multiplicative_stretch(
                session.live_graph(), session.spanner_snapshot().spanner
            )
            assert report.within(2 ** session.k)

    def test_spanner_distance_bounds(self):
        session = make_session(enable_sparsifier=False)
        session.ingest_batch([EdgeUpdate(0, 1, +1), EdgeUpdate(1, 2, +1)])
        assert session.spanner_distance(0, 0) == 0.0
        distance = session.spanner_distance(0, 2)
        assert 2.0 <= distance <= 2.0 * 2 ** session.k
        assert session.spanner_distance(0, 13) == float("inf")

    def test_cut_estimate_unweighted(self):
        session = make_session(enable_spanner=False)
        stream = mixed_workload_stream(14, 600, seed=15)
        session.ingest_batch(list(stream))
        side = set(range(7))
        estimate = session.cut_estimate(side)
        truth = cut_value(session.live_graph(), side)
        assert estimate >= 0.0
        if truth == 0:
            assert estimate == 0.0

    def test_weighted_session_cut(self):
        session = make_session(weight_bounds=(1.0, 8.0), enable_spanner=False)
        stream = mixed_workload_stream(14, 400, seed=17, weights=(1.0, 8.0))
        session.ingest_batch(list(stream))
        estimate = session.cut_estimate(range(7))
        assert estimate >= 0.0

    def test_disabled_slots_raise(self):
        session = make_session(enable_spanner=False, enable_sparsifier=False)
        session.ingest(EdgeUpdate(0, 1, +1))
        with pytest.raises(RuntimeError, match="spanner"):
            session.spanner_distance(0, 1)
        with pytest.raises(RuntimeError, match="sparsifier"):
            session.cut_estimate({0})

    def test_cut_argument_validation(self):
        session = make_session(enable_spanner=False)
        session.ingest(EdgeUpdate(0, 1, +1))
        with pytest.raises(ValueError, match="nonempty"):
            session.cut_estimate(())
        with pytest.raises(ValueError, match="leaves"):
            session.cut_estimate({99})

    def test_snapshot_does_not_perturb_live_state(self):
        """Finalizing a snapshot must leave the live sketches untouched
        (the clone discipline), so later ingest + queries stay exact."""
        session = make_session()
        tokens = list(mixed_workload_stream(14, 500, seed=19))
        session.ingest_batch(tokens[:250])
        before = [list(a.shard_state_ints(0)) for a in session._algorithms()]
        session.spanner_snapshot()
        session.sparsifier_snapshot()
        session.components()
        after = [list(a.shard_state_ints(0)) for a in session._algorithms()]
        assert before == after


class TestEpochCache:
    def test_repeat_queries_hit_cache(self):
        session = make_session(enable_sparsifier=False)
        session.ingest_batch([EdgeUpdate(0, 1, +1), EdgeUpdate(1, 2, +1)])
        first = session.spanner_snapshot()
        hits_before = session._cache.hits
        assert session.spanner_snapshot() is first
        assert session._cache.hits == hits_before + 1

    def test_ingest_invalidates(self):
        session = make_session(enable_sparsifier=False)
        session.ingest(EdgeUpdate(0, 1, +1))
        first = session.spanner_snapshot()
        session.ingest(EdgeUpdate(1, 2, +1))
        second = session.spanner_snapshot()
        assert second is not first
        assert (1, 2) in second.spanner.edge_set()

    def test_connected_shares_forest_decode(self):
        session = make_session(enable_spanner=False, enable_sparsifier=False)
        session.ingest_batch([EdgeUpdate(0, 1, +1), EdgeUpdate(2, 3, +1)])
        session.spanning_forest()  # pays the decode
        misses_before = session._cache.misses
        session.connected(0, 1)
        session.connected(2, 3)
        session.components()
        assert session._cache.misses == misses_before

    def test_stats_counters(self):
        session = make_session(enable_spanner=False, enable_sparsifier=False)
        session.ingest(EdgeUpdate(0, 1, +1))
        session.connected(0, 1)
        session.connected(0, 1)
        stats = session.stats()
        assert stats.epoch == 1
        assert stats.updates_ingested == 1
        assert stats.live_edges == 1
        assert stats.cache_hits >= 1
        assert stats.cache_misses >= 1
        assert stats.space_words > 0


class TestSessionConstruction:
    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            GraphSession(0, 1)
        with pytest.raises(ValueError):
            GraphSession(4, 1, weight_bounds=(2.0, 1.0))

    def test_weighted_sessions_use_weight_classes(self):
        from repro.core.sparsify import StreamingWeightedSparsifier

        session = make_session(weight_bounds=(1.0, 8.0))
        assert isinstance(session._sparsifier, StreamingWeightedSparsifier)
