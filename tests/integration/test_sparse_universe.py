"""Sparse vertex-universe engine: dense/lazy bit-identity and interop.

The lazy :class:`~repro.graph.vertex_space.VertexSpace` engine promises
to be a pure *storage* change: on the same universe and the same stream,
every touched sketch row, every wire byte and every query answer must be
bit-identical to the dense engine's, for all three algorithm families,
weighted and unweighted — including clone isolation, shard
serialization/merging across *mixed* dense/lazy shards, and
kill/restore at an arbitrary epoch.  These tests pin exactly that, plus
the resident-space proportionality and external-id (interned-space)
behavior the sparse engine adds.
"""

from __future__ import annotations

import random

import pytest

from repro.agm.connectivity import ConnectivityChecker
from repro.core.parameters import SparsifierParams, SpannerParams
from repro.core.sparsify import StreamingSparsifier, StreamingWeightedSparsifier
from repro.core.two_pass_spanner import TwoPassSpannerBuilder
from repro.graph.vertex_space import VertexSpace, as_vertex_space
from repro.service import GraphSession, components_match_ledger, load_session
from repro.stream.generators import (
    mixed_workload_stream,
    power_law_universe_stream,
    sparse_session_ops,
    sparse_touch_stream,
)
from repro.stream.updates import EdgeUpdate

SLIM = SparsifierParams(estimate_levels=2, sampling_levels=2, sampling_rounds_factor=0.01)
SLIM_SPANNER = SpannerParams(table_stacks=1, table_capacity_factor=0.75)


def _run_passes(algorithm, stream, batch_size=512):
    for pass_index in range(algorithm.passes_required):
        algorithm.begin_pass(pass_index)
        for chunk in stream.iter_batches(batch_size):
            algorithm.process_batch(chunk, pass_index)
        algorithm.end_pass(pass_index)
    return algorithm


def _states(algorithm):
    return [
        list(algorithm.shard_state_ints(p)) for p in range(algorithm.passes_required)
    ]


class TestVertexSpace:
    def test_coercion_and_kinds(self):
        dense = as_vertex_space(12)
        assert dense.universe_size == 12 and not dense.lazy
        sparse = VertexSpace.sparse(10**7)
        assert sparse.lazy and not sparse.is_interned
        with pytest.raises(ValueError):
            VertexSpace.sparse((1 << 31) + 1)
        with pytest.raises(TypeError):
            as_vertex_space(3.5)

    def test_interning_is_first_sight_stable(self):
        space = VertexSpace.interned(100, ids="strings")
        assert space.intern("alice") == 0
        assert space.intern("bob") == 1
        assert space.intern("alice") == 0
        assert space.lookup("carol") is None
        assert space.label(1) == "bob"
        with pytest.raises(TypeError):
            space.intern(42)
        ints = VertexSpace.interned(100, ids="ints")
        assert ints.intern(4_000_000_000) == 0  # beyond any direct universe
        with pytest.raises(ValueError):
            ints.intern(1 << 32)

    def test_capacity_enforced(self):
        space = VertexSpace.interned(2, ids="strings")
        space.intern("a")
        space.intern("b")
        with pytest.raises(ValueError):
            space.intern("c")


class TestDenseLazyIdentity:
    """Same universe, same stream: dense and lazy engines agree bit for bit."""

    def test_connectivity(self):
        n = 96
        stream = mixed_workload_stream(n, 2500, "sparse-id-agm")
        dense = _run_passes(ConnectivityChecker(n, "sid"), stream)
        lazy = _run_passes(ConnectivityChecker(VertexSpace.sparse(n), "sid"), stream)
        assert _states(dense) == _states(lazy)
        assert sorted(dense.spanning_forest()) == sorted(lazy.spanning_forest())
        dense_components = sorted(
            map(sorted, (c for c in dense.finalize() if len(c) > 1))
        )
        lazy_components = sorted(
            map(sorted, (c for c in lazy.finalize() if len(c) > 1))
        )
        assert dense_components == lazy_components

    def test_spanner(self):
        n = 24
        stream = mixed_workload_stream(n, 2000, "sparse-id-spanner")
        dense = _run_passes(TwoPassSpannerBuilder(n, 2, "sid-sp"), stream)
        lazy = _run_passes(
            TwoPassSpannerBuilder(VertexSpace.sparse(n), 2, "sid-sp"), stream
        )
        assert _states(dense) == _states(lazy)
        assert dense.finalize().spanner.edge_set() == lazy.finalize().spanner.edge_set()

    def test_sparsifier_unweighted(self):
        n = 16
        stream = mixed_workload_stream(n, 1500, "sparse-id-sparsify")
        dense = _run_passes(
            StreamingSparsifier(n, "sid-sf", k=1, params=SLIM), stream, 256
        )
        lazy = _run_passes(
            StreamingSparsifier(VertexSpace.sparse(n), "sid-sf", k=1, params=SLIM),
            stream,
            256,
        )
        assert _states(dense) == _states(lazy)
        assert dense.finalize().edge_set() == lazy.finalize().edge_set()

    def test_sparsifier_weighted(self):
        n = 12
        stream = mixed_workload_stream(
            n, 1000, "sparse-id-weighted", weights=(1.0, 4.0)
        )
        dense = _run_passes(
            StreamingWeightedSparsifier(n, "sid-w", 1.0, 4.0, k=1, params=SLIM),
            stream,
            256,
        )
        lazy = _run_passes(
            StreamingWeightedSparsifier(
                VertexSpace.sparse(n), "sid-w", 1.0, 4.0, k=1, params=SLIM
            ),
            stream,
            256,
        )
        assert _states(dense) == _states(lazy)
        assert {e for e in dense.finalize().edges()} == {
            e for e in lazy.finalize().edges()
        }

    def test_lazy_clone_isolation(self):
        n = 48
        stream = list(mixed_workload_stream(n, 1200, "sparse-clone"))
        builder = TwoPassSpannerBuilder(VertexSpace.sparse(n), 2, "sc")
        builder.process_batch(stream[:600], 0)
        clone = builder.clone()
        builder.process_batch(stream[600:], 0)
        reference = TwoPassSpannerBuilder(VertexSpace.sparse(n), 2, "sc")
        reference.process_batch(stream[:600], 0)
        assert clone.shard_state_ints(0) == reference.shard_state_ints(0)


class TestMixedShardMerge:
    """Dense and lazy shards of one stream reassemble interchangeably."""

    @pytest.mark.parametrize("algorithm", ["connectivity", "spanner"])
    @pytest.mark.parametrize("coordinator_lazy", [False, True])
    def test_round_trip_and_merge(self, algorithm, coordinator_lazy):
        n, shards = 32, 3

        def make(lazy):
            space = VertexSpace.sparse(n) if lazy else n
            if algorithm == "connectivity":
                return ConnectivityChecker(space, "mix")
            return TwoPassSpannerBuilder(space, 2, "mix")

        stream = list(mixed_workload_stream(n, 1800, "mixed-shards"))
        single = make(False)
        single.process_batch(stream, 0)
        reference = single.shard_state_ints(0)

        coordinator = make(coordinator_lazy)
        for shard in range(shards):
            worker = make(lazy=(shard % 2 == 0))  # alternate storage engines
            worker.process_batch(stream[shard::shards], 0)
            shipped = worker.shard_state_ints(0)
            rebuilt = make(lazy=(shard % 2 == 1))  # load into the *other* engine
            rebuilt.load_shard_state_ints(0, shipped)
            assert rebuilt.shard_state_ints(0) == shipped
            coordinator.merge_shard(rebuilt, 0)
        assert coordinator.shard_state_ints(0) == reference

    def test_repeated_broadcast_adoption_is_idempotent(self):
        n = 24
        stream = list(mixed_workload_stream(n, 900, "adopt-twice"))
        coordinator = TwoPassSpannerBuilder(VertexSpace.sparse(n), 2, "adopt")
        coordinator.process_batch(stream, 0)
        coordinator.end_pass(0)
        broadcast = coordinator.broadcast_state(1)
        worker = TwoPassSpannerBuilder(VertexSpace.sparse(n), 2, "adopt")
        worker.process_batch(stream, 0)
        worker.adopt_broadcast(broadcast, 1)
        stacks_after_first = len(worker._cut_stacks)
        worker.adopt_broadcast(broadcast, 1)  # e.g. a retried broadcast
        assert len(worker._cut_stacks) == stacks_after_first
        worker.process_batch(stream, 1)
        worker.end_pass(1)
        assert worker.finalize().spanner.num_edges() > 0


class TestWireOverwrites:
    def test_load_onto_non_fresh_sketch_overwrites(self):
        """The sparse wire names nonzero rows only; loading it must still
        *overwrite* a non-fresh sketch, not merge into stale rows."""
        stream_a = list(mixed_workload_stream(32, 400, "overwrite-a"))
        stream_b = list(mixed_workload_stream(32, 400, "overwrite-b"))
        target = ConnectivityChecker(VertexSpace.sparse(32), "ow")
        target.process_batch(stream_a, 0)
        source = ConnectivityChecker(VertexSpace.sparse(32), "ow")
        source.process_batch(stream_b, 0)
        target.load_shard_state_ints(0, source.shard_state_ints(0))
        assert target.shard_state_ints(0) == source.shard_state_ints(0)

    def test_numpy_integer_query_ids(self):
        import numpy as np

        session = GraphSession(
            8, "np-ids", enable_spanner=False, enable_sparsifier=False
        )
        session.ingest_batch([EdgeUpdate(0, 1, +1)])
        assert session.connected(np.int64(0), np.int64(1))
        assert not session.connected(np.int64(0), np.int64(5))


class TestSparseSession:
    def _tokens(self, universe, touched, count, seed):
        return list(sparse_touch_stream(universe, touched, count, seed))

    def _session(self, universe, seed="sparse-session"):
        return GraphSession(
            VertexSpace.sparse(universe),
            seed,
            k=2,
            sparsifier_k=1,
            sparsifier_params=SLIM,
            spanner_params=SLIM_SPANNER,
            agm_rounds=10,
        )

    def test_kill_restore_at_random_epoch(self, tmp_path):
        universe = 50_000
        tokens = self._tokens(universe, 48, 900, "sparse-restore")
        rng = random.Random(17)
        cut = rng.randrange(200, 700)
        session = self._session(universe)
        session.ingest_batch(tokens[:cut])
        path = tmp_path / "sparse.bin"
        session.checkpoint(path)
        session.ingest_batch(tokens[cut:])
        reference = session.snapshot_answers()
        reference_states = [
            list(algorithm.shard_state_ints(0)) for algorithm in session._algorithms()
        ]

        restored = load_session(path)
        assert restored.space.lazy and restored.num_vertices == universe
        restored.ingest_batch(tokens[cut:])
        assert restored.snapshot_answers() == reference
        assert [
            list(algorithm.shard_state_ints(0)) for algorithm in restored._algorithms()
        ] == reference_states

    def test_resident_space_tracks_touched(self):
        universe = 1_000_000
        session = GraphSession(
            VertexSpace.sparse(universe),
            "sparse-space",
            enable_spanner=False,
            enable_sparsifier=False,
            agm_rounds=8,
        )
        session.ingest_batch(self._tokens(universe, 64, 400, "sparse-space"))
        stats = session.stats()
        assert stats.touched_vertices <= 64
        assert stats.space_words < stats.universe_space_words / 1000
        assert components_match_ledger(session)

    def test_dense_and_lazy_sessions_answer_identically(self):
        n = 64
        tokens = list(mixed_workload_stream(n, 800, "session-identity"))
        dense = GraphSession(
            n, "si", k=2, sparsifier_k=1,
            sparsifier_params=SLIM, spanner_params=SLIM_SPANNER,
        )
        lazy = GraphSession(
            VertexSpace.sparse(n), "si", k=2, sparsifier_k=1,
            sparsifier_params=SLIM, spanner_params=SLIM_SPANNER,
        )
        dense.ingest_batch(tokens)
        lazy.ingest_batch(tokens)
        dense_answers = dense.snapshot_answers()
        lazy_answers = lazy.snapshot_answers()
        # components: dense lists universe singletons, lazy only touched —
        # compare the non-singleton partition plus everything else exactly.
        assert [c for c in dense_answers.pop("components") if len(c) > 1] == [
            c for c in lazy_answers.pop("components") if len(c) > 1
        ]
        assert dense_answers == lazy_answers
        assert [
            list(a.shard_state_ints(0)) for a in dense._algorithms()
        ] == [list(a.shard_state_ints(0)) for a in lazy._algorithms()]


class TestInternedSession:
    def test_string_ids_end_to_end(self, tmp_path):
        space = VertexSpace.interned(1000, ids="strings")
        session = GraphSession(
            space, "strings", k=2, enable_sparsifier=False,
            spanner_params=SLIM_SPANNER, agm_rounds=8,
        )
        session.ingest_external(
            [("alice", "bob", +1), ("bob", "carol", +1), ("dave", "erin", +1)]
        )
        assert session.connected("alice", "carol")
        assert not session.connected("alice", "dave")
        assert not session.connected("alice", "zoe-never-seen")
        assert session.connected("zoe", "zoe")
        forest = session.spanning_forest_external()
        assert {frozenset(edge) for edge in forest} == {
            frozenset(("alice", "bob")),
            frozenset(("bob", "carol")),
            frozenset(("dave", "erin")),
        }
        assert session.spanner_distance("alice", "carol") == 2.0
        assert session.spanner_distance("alice", "zoe-never-seen") == float("inf")

        path = tmp_path / "strings.bin"
        session.checkpoint(path)
        restored = load_session(path)
        assert restored.space.externals() == session.space.externals()
        assert restored.connected("alice", "carol")
        restored.ingest_external([("carol", "dave", +1)])
        assert restored.connected("alice", "erin")

    def test_cut_estimate_of_unknown_ids_is_zero(self):
        space = VertexSpace.interned(100, ids="strings")
        session = GraphSession(
            space, "cut-unknown", enable_spanner=False,
            sparsifier_k=1, sparsifier_params=SLIM, agm_rounds=6,
        )
        session.ingest_external([("a", "b", +1), ("b", "c", +1)])
        # A side made only of never-seen ids is isolated: cut weight 0,
        # never some arbitrary interned vertex's cut.
        assert session.cut_estimate({"zoe", "yann"}) == 0.0
        assert session.cut_estimate({"a", "never-seen"}) == session.cut_estimate({"a"})

    def test_int_ids_beyond_direct_universe(self):
        space = VertexSpace.interned(100, ids="ints")
        session = GraphSession(
            space, "big-ints", enable_spanner=False, enable_sparsifier=False,
            agm_rounds=6,
        )
        a, b = (1 << 32) - 1, (1 << 31) + 7
        session.ingest_external([(a, b, +1)])
        assert session.connected(a, b)
        assert not session.connected(a, 123456)


class TestSparseGenerators:
    def test_sparse_touch_stream_respects_touched_bound(self):
        stream = sparse_touch_stream(10**6, 32, 500, "gen-sparse")
        endpoints = {v for update in stream for v in update.pair}
        assert len(endpoints) <= 32
        assert all(0 <= v < 10**6 for v in endpoints)
        assert stream.num_deletions() > 0
        for pair, multiplicity in stream.final_multiplicities().items():
            assert multiplicity == 1

    def test_power_law_stream_is_skewed(self):
        stream = power_law_universe_stream(10**6, 64, 1200, "gen-power", exponent=2.0)
        degree: dict[int, int] = {}
        for update in stream:
            if update.sign == 1:
                for v in update.pair:
                    degree[v] = degree.get(v, 0) + 1
        counts = sorted(degree.values(), reverse=True)
        # The hottest id should dominate the median id by a wide margin.
        assert counts[0] >= 5 * max(1, counts[len(counts) // 2])

    def test_sparse_session_ops_shape(self):
        ops = sparse_session_ops(
            10**6, 24, 400, "gen-ops", query_every=100, query_repeats=2
        )
        kinds = [op[0] for op in ops]
        assert "ingest" in kinds and "query" in kinds
        total = sum(len(op[1]) for op in ops if op[0] == "ingest")
        assert total == 400
        for op in ops:
            if op[0] == "query" and op[1] in ("connected", "spanner_distance"):
                u, v = op[2]
                assert u != v
