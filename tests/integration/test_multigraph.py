"""Multigraph semantics end-to-end.

The paper's model is a *multigraph*: `x_ij = #insertions - #deletions`
may exceed 1, and an edge is present while its multiplicity is positive.
"One needs to replace sets by multisets ... but this does not affect the
performance of our sketches since they can handle vectors with
polynomially large entries."  These tests drive multiplicities > 1
through every algorithm.
"""

from repro.agm import AgmSketch, ConnectivityChecker
from repro.core import AdditiveSpannerBuilder, TwoPassSpannerBuilder
from repro.graph.distances import evaluate_multiplicative_stretch
from repro.graph.graph import Graph
from repro.graph.random_graphs import connected_gnp
from repro.stream.stream import DynamicStream
from repro.util.rng import rng_from_seed


def multigraph_stream(graph: Graph, seed: int, max_multiplicity: int = 3) -> DynamicStream:
    """Insert every edge 1..max_multiplicity times, then delete all but
    one copy of each (final multiplicity exactly 1, peak higher)."""
    rng = rng_from_seed(seed, "multigraph")
    stream = DynamicStream(graph.num_vertices)
    multiplicities = {}
    for u, v, w in graph.edges():
        count = rng.randrange(1, max_multiplicity + 1)
        multiplicities[(u, v)] = count
        for _ in range(count):
            stream.insert(u, v, w)
    for (u, v), count in multiplicities.items():
        for _ in range(count - 1):
            stream.delete(u, v, graph.weight(u, v))
    return stream


class TestMultigraphStreams:
    def test_final_multiplicities(self):
        graph = connected_gnp(20, 0.2, seed=1)
        stream = multigraph_stream(graph, seed=2)
        assert all(m == 1 for m in stream.final_multiplicities().values())
        assert stream.final_graph() == graph

    def test_peak_multiplicity_above_one(self):
        graph = connected_gnp(20, 0.3, seed=3)
        stream = multigraph_stream(graph, seed=4)
        assert stream.num_insertions() > graph.num_edges()


class TestAlgorithmsOnMultigraphs:
    def test_two_pass_spanner(self):
        graph = connected_gnp(36, 0.2, seed=5)
        stream = multigraph_stream(graph, seed=6)
        output = TwoPassSpannerBuilder(36, 2, seed=7).run(stream)
        report = evaluate_multiplicative_stretch(graph, output.spanner)
        assert report.within(4)
        for u, v, _ in output.spanner.edges():
            assert graph.has_edge(u, v)

    def test_two_pass_spanner_residual_multiplicity(self):
        """Edges whose multiplicity stays at 2 must still be present."""
        stream = DynamicStream(6)
        for u, v in [(0, 1), (1, 2), (2, 3), (3, 4), (4, 5)]:
            stream.insert(u, v)
            stream.insert(u, v)  # multiplicity 2, never deleted
        output = TwoPassSpannerBuilder(6, 2, seed=8).run(stream)
        report = evaluate_multiplicative_stretch(stream.final_graph(), output.spanner)
        assert report.within(4)

    def test_additive_spanner(self):
        graph = connected_gnp(36, 0.25, seed=9)
        stream = multigraph_stream(graph, seed=10)
        spanner = AdditiveSpannerBuilder(36, 4, seed=11).run(stream)
        for u, v, _ in spanner.edges():
            assert graph.has_edge(u, v)

    def test_agm_forest(self):
        graph = connected_gnp(24, 0.15, seed=12)
        sketch = AgmSketch(24, seed=13)
        rng = rng_from_seed(14, "agm-multi")
        for u, v, _ in graph.edges():
            count = rng.randrange(1, 4)
            sketch.update(u, v, count)
        forest = sketch.spanning_forest()
        assert len(forest) == 23
        for a, b in forest:
            assert graph.has_edge(a, b)

    def test_connectivity_checker(self):
        graph = connected_gnp(24, 0.15, seed=15)
        stream = multigraph_stream(graph, seed=16)
        components = ConnectivityChecker(24, seed=17).run(stream)
        assert len(components) == 1
