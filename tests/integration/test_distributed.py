"""Integration tests: the distributed (sharded-stream) setting.

Linear sketches must produce identical results whether the stream is
processed on one machine or sharded across servers and merged — the
property the paper's introduction motivates.  These tests exercise the
merge paths of every major structure.
"""

import pytest

from repro.agm import AgmSketch
from repro.core import TwoPassSpannerBuilder
from repro.graph import connected_gnp, evaluate_multiplicative_stretch
from repro.sketch import DistinctElementsSketch, L0Sampler, SparseRecoverySketch
from repro.stream import shard_by_edge, shard_round_robin, stream_from_graph


class TestSharding:
    def test_round_robin_partitions_tokens(self):
        graph = connected_gnp(20, 0.2, seed=1)
        stream = stream_from_graph(graph, seed=2, churn=0.5)
        shards = shard_round_robin(stream, 3)
        assert sum(len(s) for s in shards) == len(stream)
        # Interleaving: shard sizes differ by at most one.
        sizes = sorted(len(s) for s in shards)
        assert sizes[-1] - sizes[0] <= 1

    def test_by_edge_keeps_edge_updates_together(self):
        graph = connected_gnp(20, 0.2, seed=3)
        stream = stream_from_graph(graph, seed=4, churn=1.0)
        shards = shard_by_edge(stream, 4, seed=5)
        assert sum(len(s) for s in shards) == len(stream)
        owner = {}
        for server, shard in enumerate(shards):
            for update in shard:
                assert owner.setdefault(update.pair, server) == server

    def test_invalid_server_count(self):
        graph = connected_gnp(5, 0.5, seed=6)
        stream = stream_from_graph(graph, seed=7)
        with pytest.raises(ValueError):
            shard_round_robin(stream, 0)
        with pytest.raises(ValueError):
            shard_by_edge(stream, 0)


class TestSketchMergeEquivalence:
    """sketch(shard_1) + ... + sketch(shard_s) == sketch(stream)."""

    def test_sparse_recovery_merge(self):
        graph = connected_gnp(24, 0.2, seed=8)
        stream = stream_from_graph(graph, seed=9, churn=0.5)
        shards = shard_round_robin(stream, 3)

        single = SparseRecoverySketch(24 * 24, 64, seed=10)
        merged = SparseRecoverySketch(24 * 24, 64, seed=10)
        parts = [SparseRecoverySketch(24 * 24, 64, seed=10) for _ in range(3)]
        for update in stream:
            single.update(update.u * 24 + update.v, update.sign)
        for part, shard in zip(parts, shards):
            for update in shard:
                part.update(update.u * 24 + update.v, update.sign)
            merged.combine(part)
        assert merged.decode() == single.decode()

    def test_l0_sampler_merge(self):
        sampler_parts = [L0Sampler(1000, seed=11) for _ in range(2)]
        sampler_parts[0].update(5, 1)
        sampler_parts[0].update(9, 2)
        sampler_parts[1].update(5, -1)
        sampler_parts[0].combine(sampler_parts[1])
        assert sampler_parts[0].sample() == (9, 2)

    def test_distinct_elements_merge(self):
        parts = [DistinctElementsSketch(1000, seed=12) for _ in range(2)]
        for i in range(0, 64, 2):
            parts[0].update(i, 1)
        for i in range(1, 64, 2):
            parts[1].update(i, 1)
        parts[0].combine(parts[1])
        assert 32 <= parts[0].estimate() <= 128

    def test_agm_merge_across_shard_disciplines(self):
        graph = connected_gnp(24, 0.15, seed=13)
        stream = stream_from_graph(graph, seed=14, churn=0.6)
        for shards in (
            shard_round_robin(stream, 4),
            shard_by_edge(stream, 4, seed=15),
        ):
            sketches = [AgmSketch(24, seed=16) for _ in shards]
            for sketch, shard in zip(sketches, shards):
                for update in shard:
                    sketch.update(update.u, update.v, update.sign)
            merged = sketches[0]
            for sketch in sketches[1:]:
                merged.combine(sketch)
            assert len(merged.spanning_forest()) == 23


class TestDistributedSpanner:
    def test_sharded_two_pass_spanner_meets_guarantee(self):
        n, k, servers = 40, 2, 3
        graph = connected_gnp(n, 0.2, seed=17)
        stream = stream_from_graph(graph, seed=18, churn=0.4)
        shards = shard_round_robin(stream, servers)

        builders = [TwoPassSpannerBuilder(n, k, seed=19) for _ in range(servers)]
        for builder, shard in zip(builders, shards):
            builder.begin_pass(0)
            for update in shard:
                builder.process(update, 0)
        coordinator = builders[0]
        for builder in builders[1:]:
            coordinator.merge_first_pass(builder)
        coordinator.end_pass(0)

        for builder in builders[1:]:
            builder.adopt_forest_from(coordinator)
        for builder, shard in zip(builders, shards):
            for update in shard:
                builder.process(update, 1)
        for builder in builders[1:]:
            coordinator.merge_second_pass(builder)

        output = coordinator.finalize()
        report = evaluate_multiplicative_stretch(graph, output.spanner)
        assert report.within(2 ** k)
        for u, v, _ in output.spanner.edges():
            assert graph.has_edge(u, v)

    def test_merge_requires_same_seed(self):
        left = TwoPassSpannerBuilder(8, 2, seed=1)
        right = TwoPassSpannerBuilder(8, 2, seed=2)
        with pytest.raises(ValueError):
            left.merge_first_pass(right)

    def test_adopt_requires_built_forest(self):
        left = TwoPassSpannerBuilder(8, 2, seed=1)
        right = TwoPassSpannerBuilder(8, 2, seed=1)
        with pytest.raises(ValueError):
            left.adopt_forest_from(right)


class TestShardedRunner:
    """The distributed execution engine: sharded + merged state must be
    bit-identical to the single-stream state, under both sharding
    disciplines and both backends."""

    @pytest.fixture(scope="class")
    def workload(self):
        graph = connected_gnp(28, 0.18, seed=31)
        return graph, stream_from_graph(graph, seed=32, churn=0.5)

    @pytest.mark.parametrize("backend", ["serial", "mp"])
    @pytest.mark.parametrize("discipline", ["round-robin", "by-edge"])
    def test_connectivity_state_bit_identical(self, workload, backend, discipline):
        from functools import partial

        from repro.agm import ConnectivityChecker
        from repro.stream import ShardedRunner, run_passes

        graph, stream = workload
        single = ConnectivityChecker(28, seed=33)
        run_passes(stream, single)

        runner = ShardedRunner(3, backend=backend, discipline=discipline)
        coordinator = ConnectivityChecker(28, seed=33)
        for shard in runner.shard(stream):
            worker = ConnectivityChecker(28, seed=33)
            worker.begin_pass(0)
            for update in shard:
                worker.process(update, 0)
            peer = ConnectivityChecker(28, seed=33)
            peer.load_shard_state_ints(0, worker.shard_state_ints(0))
            coordinator.merge_shard(peer, 0)
        assert coordinator.shard_state_ints(0) == single.shard_state_ints(0)

        result = runner.run(stream, partial(ConnectivityChecker, 28, 33))
        assert sorted(map(sorted, result.output)) == sorted(
            map(sorted, single.finalize())
        )

    @pytest.mark.parametrize("backend", ["serial", "mp"])
    def test_spanner_output_identical(self, workload, backend):
        from functools import partial

        from repro.stream import ShardedRunner, run_passes

        graph, stream = workload
        single = run_passes(stream, TwoPassSpannerBuilder(28, 2, seed=34))
        runner = ShardedRunner(3, backend=backend, batch_size=64)
        result = runner.run(stream, partial(TwoPassSpannerBuilder, 28, 2, 34))
        assert result.output.spanner.edge_set() == single.spanner.edge_set()
        report = evaluate_multiplicative_stretch(graph, result.output.spanner)
        assert report.within(4)

    def test_spanner_pass_states_bit_identical(self, workload):
        from functools import partial

        from repro.stream import ShardedRunner, run_passes

        _, stream = workload
        single = TwoPassSpannerBuilder(28, 2, seed=35)
        single_output = run_passes(stream, single)
        runner = ShardedRunner(4, backend="serial", discipline="by-edge")
        # Re-run distributed, then compare the coordinator's serialized
        # pass states against the single-machine builder's.
        coordinator = TwoPassSpannerBuilder(28, 2, seed=35)
        shards = runner.shard(stream)
        workers = [TwoPassSpannerBuilder(28, 2, seed=35) for _ in shards]
        for pass_index in (0, 1):
            broadcast = (
                coordinator.broadcast_state(pass_index) if pass_index else None
            )
            for worker, shard in zip(workers, shards):
                if broadcast is not None:
                    worker.adopt_broadcast(broadcast, pass_index)
                worker.begin_pass(pass_index)
                for update in shard:
                    worker.process(update, pass_index)
                peer = TwoPassSpannerBuilder(28, 2, seed=35)
                if broadcast is not None:
                    peer.adopt_broadcast(broadcast, pass_index)
                peer.load_shard_state_ints(
                    pass_index, worker.shard_state_ints(pass_index)
                )
                coordinator.merge_shard(peer, pass_index)
            coordinator.end_pass(pass_index)
            assert (
                coordinator.shard_state_ints(pass_index)
                == single.shard_state_ints(pass_index)
            ), f"pass-{pass_index} state diverged"
        assert (
            coordinator.finalize().spanner.edge_set()
            == single_output.spanner.edge_set()
        )

    def test_communication_report_shape(self, workload):
        from functools import partial

        from repro.stream import ShardedRunner

        _, stream = workload
        runner = ShardedRunner(3, backend="serial", batch_size=128)
        result = runner.run(stream, partial(TwoPassSpannerBuilder, 28, 2, 36))
        report = result.communication
        assert len(report.rounds) == 2
        assert all(len(trace.message_bytes) == 3 for trace in report.rounds)
        # Pass 1 ships no broadcast; pass 2 ships the forest to each server.
        assert report.rounds[0].broadcast_bytes == 0
        assert report.rounds[1].broadcast_bytes > 0
        assert report.total_bytes() == (
            report.uplink_bytes() + report.downlink_bytes()
        )
        assert all(size > 0 for trace in report.rounds for size in trace.message_bytes)

    def test_mp_worker_failure_surfaces(self, workload):
        from functools import partial

        from repro.stream import ShardedRunner

        _, stream = workload

        runner = ShardedRunner(2, backend="mp")
        with pytest.raises((RuntimeError, NotImplementedError)):
            # GreedySpannerBaseline-style plain algorithms are not
            # shardable; the protocol must say so loudly, not hang.
            runner.run(stream, partial(_NotShardable,))

    def test_runner_validates_configuration(self):
        from repro.stream import ShardedRunner

        with pytest.raises(ValueError):
            ShardedRunner(0)
        with pytest.raises(ValueError):
            ShardedRunner(2, backend="carrier-pigeon")
        with pytest.raises(ValueError):
            ShardedRunner(2, discipline="alphabetical")
        with pytest.raises(ValueError):
            ShardedRunner(2, batch_size=0)


class _NotShardable:
    """A minimal StreamingAlgorithm without the sharded protocol."""

    passes_required = 1

    def begin_pass(self, pass_index):
        pass

    def process(self, update, pass_index):
        pass

    def process_batch(self, updates, pass_index):
        pass

    def end_pass(self, pass_index):
        pass

    def finalize(self):
        return None

    def broadcast_state(self, pass_index):
        return None

    def shard_state_ints(self, pass_index):
        raise NotImplementedError("_NotShardable does not support sharding")


class _DiesSilently(_NotShardable):
    """Simulates a worker killed mid-round (exits without reporting)."""

    def shard_state_ints(self, pass_index):
        import os

        os._exit(3)  # bypasses the worker's exception reporting entirely


class TestWorkerDeath:
    def test_dead_mp_worker_raises_instead_of_hanging(self):
        from functools import partial

        from repro.graph import connected_gnp
        from repro.stream import ShardedRunner, stream_from_graph

        graph = connected_gnp(8, 0.5, seed=40)
        stream = stream_from_graph(graph, seed=41)
        runner = ShardedRunner(2, backend="mp")
        with pytest.raises(RuntimeError, match="died with exit code"):
            runner.run(stream, partial(_DiesSilently,))
