"""Integration tests: the distributed (sharded-stream) setting.

Linear sketches must produce identical results whether the stream is
processed on one machine or sharded across servers and merged — the
property the paper's introduction motivates.  These tests exercise the
merge paths of every major structure.
"""

import pytest

from repro.agm import AgmSketch
from repro.core import TwoPassSpannerBuilder
from repro.graph import connected_gnp, evaluate_multiplicative_stretch
from repro.sketch import DistinctElementsSketch, L0Sampler, SparseRecoverySketch
from repro.stream import shard_by_edge, shard_round_robin, stream_from_graph


class TestSharding:
    def test_round_robin_partitions_tokens(self):
        graph = connected_gnp(20, 0.2, seed=1)
        stream = stream_from_graph(graph, seed=2, churn=0.5)
        shards = shard_round_robin(stream, 3)
        assert sum(len(s) for s in shards) == len(stream)
        # Interleaving: shard sizes differ by at most one.
        sizes = sorted(len(s) for s in shards)
        assert sizes[-1] - sizes[0] <= 1

    def test_by_edge_keeps_edge_updates_together(self):
        graph = connected_gnp(20, 0.2, seed=3)
        stream = stream_from_graph(graph, seed=4, churn=1.0)
        shards = shard_by_edge(stream, 4, seed=5)
        assert sum(len(s) for s in shards) == len(stream)
        owner = {}
        for server, shard in enumerate(shards):
            for update in shard:
                assert owner.setdefault(update.pair, server) == server

    def test_invalid_server_count(self):
        graph = connected_gnp(5, 0.5, seed=6)
        stream = stream_from_graph(graph, seed=7)
        with pytest.raises(ValueError):
            shard_round_robin(stream, 0)
        with pytest.raises(ValueError):
            shard_by_edge(stream, 0)


class TestSketchMergeEquivalence:
    """sketch(shard_1) + ... + sketch(shard_s) == sketch(stream)."""

    def test_sparse_recovery_merge(self):
        graph = connected_gnp(24, 0.2, seed=8)
        stream = stream_from_graph(graph, seed=9, churn=0.5)
        shards = shard_round_robin(stream, 3)

        single = SparseRecoverySketch(24 * 24, 64, seed=10)
        merged = SparseRecoverySketch(24 * 24, 64, seed=10)
        parts = [SparseRecoverySketch(24 * 24, 64, seed=10) for _ in range(3)]
        for update in stream:
            single.update(update.u * 24 + update.v, update.sign)
        for part, shard in zip(parts, shards):
            for update in shard:
                part.update(update.u * 24 + update.v, update.sign)
            merged.combine(part)
        assert merged.decode() == single.decode()

    def test_l0_sampler_merge(self):
        sampler_parts = [L0Sampler(1000, seed=11) for _ in range(2)]
        sampler_parts[0].update(5, 1)
        sampler_parts[0].update(9, 2)
        sampler_parts[1].update(5, -1)
        sampler_parts[0].combine(sampler_parts[1])
        assert sampler_parts[0].sample() == (9, 2)

    def test_distinct_elements_merge(self):
        parts = [DistinctElementsSketch(1000, seed=12) for _ in range(2)]
        for i in range(0, 64, 2):
            parts[0].update(i, 1)
        for i in range(1, 64, 2):
            parts[1].update(i, 1)
        parts[0].combine(parts[1])
        assert 32 <= parts[0].estimate() <= 128

    def test_agm_merge_across_shard_disciplines(self):
        graph = connected_gnp(24, 0.15, seed=13)
        stream = stream_from_graph(graph, seed=14, churn=0.6)
        for shards in (
            shard_round_robin(stream, 4),
            shard_by_edge(stream, 4, seed=15),
        ):
            sketches = [AgmSketch(24, seed=16) for _ in shards]
            for sketch, shard in zip(sketches, shards):
                for update in shard:
                    sketch.update(update.u, update.v, update.sign)
            merged = sketches[0]
            for sketch in sketches[1:]:
                merged.combine(sketch)
            assert len(merged.spanning_forest()) == 23


class TestDistributedSpanner:
    def test_sharded_two_pass_spanner_meets_guarantee(self):
        n, k, servers = 40, 2, 3
        graph = connected_gnp(n, 0.2, seed=17)
        stream = stream_from_graph(graph, seed=18, churn=0.4)
        shards = shard_round_robin(stream, servers)

        builders = [TwoPassSpannerBuilder(n, k, seed=19) for _ in range(servers)]
        for builder, shard in zip(builders, shards):
            builder.begin_pass(0)
            for update in shard:
                builder.process(update, 0)
        coordinator = builders[0]
        for builder in builders[1:]:
            coordinator.merge_first_pass(builder)
        coordinator.end_pass(0)

        for builder in builders[1:]:
            builder.adopt_forest_from(coordinator)
        for builder, shard in zip(builders, shards):
            for update in shard:
                builder.process(update, 1)
        for builder in builders[1:]:
            coordinator.merge_second_pass(builder)

        output = coordinator.finalize()
        report = evaluate_multiplicative_stretch(graph, output.spanner)
        assert report.within(2 ** k)
        for u, v, _ in output.spanner.edges():
            assert graph.has_edge(u, v)

    def test_merge_requires_same_seed(self):
        left = TwoPassSpannerBuilder(8, 2, seed=1)
        right = TwoPassSpannerBuilder(8, 2, seed=2)
        with pytest.raises(ValueError):
            left.merge_first_pass(right)

    def test_adopt_requires_built_forest(self):
        left = TwoPassSpannerBuilder(8, 2, seed=1)
        right = TwoPassSpannerBuilder(8, 2, seed=1)
        with pytest.raises(ValueError):
            left.adopt_forest_from(right)
