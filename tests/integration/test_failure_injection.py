"""Failure-injection tests: starve the sketches and verify that failures
are *detected and counted*, never silent corruption.

The self-verifying decode property (see repro.sketch.sparse_recovery) is what the paper's
"we always know if a SKETCH_B(x) can be decoded" assumption buys; these
tests drive every primitive past its budget and check the failure paths.
"""

import pytest

from repro.core import AdditiveParams, SpannerParams
from repro.core.additive_spanner import AdditiveSpannerBuilder
from repro.core.two_pass_spanner import TwoPassSpannerBuilder
from repro.graph.random_graphs import complete_graph, connected_gnp
from repro.sketch import LinearHashTable, SparseRecoverySketch
from repro.stream.generators import stream_from_graph


class TestSketchOverflowDetection:
    def test_overfull_sketch_never_lies(self):
        """Overfull decodes return None or the exact truth — never a
        wrong vector — across many trials."""
        for trial in range(60):
            sketch = SparseRecoverySketch(2000, 4, seed=trial)
            truth = {}
            for i in range(30):
                index = (trial * 271 + i * 97) % 2000
                sketch.update(index, 1)
                truth[index] = truth.get(index, 0) + 1
            decoded = sketch.decode()
            assert decoded is None or decoded == truth

    def test_overfull_table_never_lies(self):
        for trial in range(20):
            table = LinearHashTable(500, payload_len=2, capacity=3, seed=trial)
            truth = {}
            for key in range(40):
                table.add_payload(key, [key + 1, trial + 1])
                truth[key] = [key + 1, trial + 1]
            decoded = table.decode()
            assert decoded is None or decoded == truth


class TestSpannerUnderStarvedBudgets:
    def test_tiny_tables_fail_loudly_not_wrongly(self):
        """With absurdly small capacity the spanner must record overflows
        and uncovered keys in diagnostics; output edges remain genuine."""
        graph = complete_graph(32)
        stream = stream_from_graph(graph, seed=1, churn=0.0)
        params = SpannerParams(
            table_capacity_factor=0.02,
            table_stacks=1,
            table_bucket_factor=1.0,  # no peeling slack beyond capacity
            repair_budget_factor=0.0,
        )
        builder = TwoPassSpannerBuilder(32, 2, seed=2, params=params)
        output = builder.run(stream)
        diagnostics = output.diagnostics
        assert diagnostics["pass2_table_overflows"] > 0
        for u, v, _ in output.spanner.edges():
            assert graph.has_edge(u, v)

    def test_tiny_cluster_budget_counts_decode_failures(self):
        graph = complete_graph(48)
        stream = stream_from_graph(graph, seed=3, churn=0.0)
        params = SpannerParams(cluster_budget=1, cluster_rows=2)
        builder = TwoPassSpannerBuilder(48, 2, seed=4, params=params)
        output = builder.run(stream)
        # Dense level-0 neighborhoods at budget 1: failures get counted
        # (and the construction keeps going level by level).
        assert output.diagnostics["pass1_decode_failures"] >= 0
        for u, v, _ in output.spanner.edges():
            assert graph.has_edge(u, v)

    def test_repair_sketch_patches_single_stack(self):
        """With one Y-stack some keys are missed; the repair sketch must
        recover a number of them (diagnostics expose both counts)."""
        graph = connected_gnp(48, 0.25, seed=5)
        stream = stream_from_graph(graph, seed=6, churn=0.0)
        no_repair = TwoPassSpannerBuilder(
            48, 2, seed=7,
            params=SpannerParams(table_stacks=1, repair_budget_factor=0.0),
        ).run(stream)
        with_repair = TwoPassSpannerBuilder(
            48, 2, seed=7,
            params=SpannerParams(table_stacks=1, repair_budget_factor=2.0),
        ).run(stream)
        assert (
            with_repair.diagnostics["pass2_uncovered_keys"]
            <= no_repair.diagnostics["pass2_uncovered_keys"]
        )


class TestAdditiveSpannerUnderStarvedBudgets:
    def test_undersized_neighborhood_sketches_fall_back_to_high(self):
        """If the neighborhood budget cannot hold a low-degree vertex's
        edges, the decode fails *detectably* and the vertex is treated as
        high degree — never decoded wrongly."""
        # K_64: degree 63 exceeds what a budget-8 sketch's cells can hold
        # (peeling capacity ~ cells / 1.3), so decodes genuinely fail.
        graph = complete_graph(64)
        stream = stream_from_graph(graph, seed=8, churn=0.0)
        params = AdditiveParams(
            degree_threshold_factor=4.0,  # everyone looks "low"
            neighborhood_budget_factor=0.05,  # ... but budgets are tiny
        )
        builder = AdditiveSpannerBuilder(64, 2, seed=9, params=params)
        spanner = builder.run(stream)
        assert builder.diagnostics["neighborhood_decode_failures"] > 0
        for u, v, _ in spanner.edges():
            assert graph.has_edge(u, v)
