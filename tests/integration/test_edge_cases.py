"""Edge-case coverage across modules: tiny graphs, degenerate parameters,
lifecycle misuse, and boundary shapes."""

import pytest

from repro.baselines import baswana_sen_spanner, greedy_spanner
from repro.core import SpannerParams, TwoPassSpannerBuilder
from repro.core.additive_spanner import AdditiveSpannerBuilder
from repro.graph.graph import Graph
from repro.graph.random_graphs import complete_graph, connected_gnp
from repro.sketch import L0Sampler, SparseRecoverySketch
from repro.stream.pipeline import StreamingAlgorithm, run_passes
from repro.stream.stream import DynamicStream
from repro.stream.generators import stream_from_graph


class TestTinyGraphs:
    def test_spanner_on_two_vertices(self):
        stream = DynamicStream(2)
        stream.insert(0, 1)
        output = TwoPassSpannerBuilder(2, 2, seed=1).run(stream)
        assert output.spanner.edge_set() == {(0, 1)}

    def test_spanner_on_single_vertex(self):
        stream = DynamicStream(1)
        output = TwoPassSpannerBuilder(1, 2, seed=2).run(stream)
        assert output.spanner.num_edges() == 0

    def test_additive_on_two_vertices(self):
        stream = DynamicStream(2)
        stream.insert(0, 1)
        spanner = AdditiveSpannerBuilder(2, 1, seed=3).run(stream)
        assert spanner.edge_set() == {(0, 1)}

    def test_k_exceeding_log_n(self):
        # k=5 on n=8: levels C_3, C_4 are almost surely empty; everything
        # must still work (terminals at low levels cover the graph).
        graph = connected_gnp(8, 0.4, seed=4)
        stream = stream_from_graph(graph, seed=5, churn=0.0)
        output = TwoPassSpannerBuilder(8, 5, seed=6).run(stream)
        from repro.graph import evaluate_multiplicative_stretch

        report = evaluate_multiplicative_stretch(graph, output.spanner)
        assert report.within(2 ** 5)

    def test_baselines_on_trivial_graphs(self):
        assert baswana_sen_spanner(Graph(3), 2, seed=1).num_edges() == 0
        assert greedy_spanner(Graph(3), 3).num_edges() == 0
        single = Graph.from_edges(2, [(0, 1)])
        assert baswana_sen_spanner(single, 2, seed=2).edge_set() == {(0, 1)}
        assert greedy_spanner(single, 3).edge_set() == {(0, 1)}


class TestLifecycleMisuse:
    def test_finalize_before_passes_raises(self):
        builder = TwoPassSpannerBuilder(4, 2, seed=1)
        with pytest.raises(RuntimeError):
            builder.finalize()

    def test_second_pass_before_forest_raises(self):
        from repro.stream.updates import EdgeUpdate

        builder = TwoPassSpannerBuilder(4, 2, seed=2)
        with pytest.raises(RuntimeError):
            builder.process(EdgeUpdate(0, 1, +1), 1)

    def test_run_passes_rejects_zero_passes(self):
        class Broken(StreamingAlgorithm):
            @property
            def passes_required(self):
                return 0

            def process(self, update, pass_index):
                pass

            def finalize(self):
                return None

        with pytest.raises(ValueError):
            run_passes(DynamicStream(2), Broken())


class TestEdgeFilterBoundaries:
    def test_filter_excluding_everything(self):
        graph = connected_gnp(16, 0.3, seed=7)
        stream = stream_from_graph(graph, seed=8, churn=0.0)
        builder = TwoPassSpannerBuilder(16, 2, seed=9, edge_filter=lambda u, v: False)
        output = builder.run(stream)
        assert output.spanner.num_edges() == 0

    def test_filter_keeping_everything_matches_unfiltered_invariants(self):
        graph = connected_gnp(24, 0.2, seed=10)
        stream = stream_from_graph(graph, seed=11, churn=0.0)
        builder = TwoPassSpannerBuilder(24, 2, seed=12, edge_filter=lambda u, v: True)
        output = builder.run(stream)
        from repro.graph import evaluate_multiplicative_stretch

        assert evaluate_multiplicative_stretch(graph, output.spanner).within(4)


class TestSketchShapeVariations:
    @pytest.mark.parametrize("rows", [2, 3, 5])
    def test_sparse_recovery_rows(self, rows):
        sketch = SparseRecoverySketch(1000, 8, seed=13, rows=rows)
        for i in range(8):
            sketch.update(i * 7, i + 1)
        assert sketch.decode() == {i * 7: i + 1 for i in range(8)}

    @pytest.mark.parametrize("bucket_factor", [1.5, 2.0, 4.0])
    def test_sparse_recovery_bucket_factor(self, bucket_factor):
        sketch = SparseRecoverySketch(1000, 8, seed=14, bucket_factor=bucket_factor)
        for i in range(8):
            sketch.update(i * 13, 1)
        assert sketch.decode() == {i * 13: 1 for i in range(8)}

    @pytest.mark.parametrize("budget", [2, 4, 8])
    def test_l0_sampler_budget(self, budget):
        sampler = L0Sampler(1000, seed=15, budget=budget)
        sampler.update(123, 4)
        assert sampler.sample() == (123, 4)

    def test_full_cancellation_is_zero(self):
        left = SparseRecoverySketch(100, 4, seed=16)
        right = SparseRecoverySketch(100, 4, seed=16)
        for i in range(4):
            left.update(i, i + 1)
            right.update(i, i + 1)
        left.combine(right, sign=-1)
        assert left.is_zero()
        assert left.decode() == {}


class TestDenseExtremes:
    def test_spanner_on_complete_graph_small_k1(self):
        # k=1: every vertex is its own terminal cluster; coverage keeps
        # one edge per neighbor — the whole K_n survives (stretch 1).
        graph = complete_graph(12)
        stream = stream_from_graph(graph, seed=17, churn=0.0)
        output = TwoPassSpannerBuilder(12, 1, seed=18).run(stream)
        assert output.spanner.edge_set() == graph.edge_set()

    def test_repair_disabled_still_functional(self):
        graph = connected_gnp(32, 0.2, seed=19)
        stream = stream_from_graph(graph, seed=20, churn=0.0)
        params = SpannerParams(repair_budget_factor=0.0)
        output = TwoPassSpannerBuilder(32, 2, seed=21, params=params).run(stream)
        from repro.graph import evaluate_multiplicative_stretch

        assert evaluate_multiplicative_stretch(graph, output.spanner).within(4)
