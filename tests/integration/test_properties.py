"""Cross-module property-based tests (hypothesis).

These check the *invariants the paper's proofs rest on* under randomized
inputs: linearity of every sketch against arbitrary update interleavings,
model invariants of streams, and the structural invariants of spanner
outputs.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.agm import AgmSketch
from repro.core.offline_spanner import offline_two_phase_spanner
from repro.graph.distances import evaluate_multiplicative_stretch
from repro.graph.graph import Graph
from repro.sketch import SparseRecoverySketch
from repro.stream.stream import DynamicStream
from repro.stream.updates import EdgeUpdate
from repro.util.rng import derive_seed

# Strategy: a small random final graph as an edge set on <= 12 vertices.
edge_sets = st.sets(
    st.tuples(st.integers(0, 11), st.integers(0, 11)).filter(lambda p: p[0] != p[1]),
    max_size=25,
).map(lambda pairs: {(min(u, v), max(u, v)) for u, v in pairs})


def graph_from(pairs):
    graph = Graph(12)
    for u, v in pairs:
        graph.add_edge(u, v)
    return graph


@settings(max_examples=40, deadline=None)
@given(edges=edge_sets, churn_edges=edge_sets)
def test_stream_final_graph_invariant(edges, churn_edges):
    """Inserting the final edges plus insert/delete pairs of any other
    edges always reproduces exactly the final graph."""
    stream = DynamicStream(12)
    transient = sorted(churn_edges - edges)
    for u, v in transient:
        stream.insert(u, v)
    for u, v in sorted(edges):
        stream.insert(u, v)
    for u, v in transient:
        stream.delete(u, v)
    assert stream.final_graph() == graph_from(edges)


@settings(max_examples=30, deadline=None)
@given(edges=edge_sets, split=st.integers(0, 100))
def test_sketch_shard_merge_property(edges, split):
    """sketch(A) + sketch(B) == sketch(A ∪ B) for any token split."""
    tokens = sorted(edges)
    cut = split % (len(tokens) + 1)
    whole = SparseRecoverySketch(144, 32, seed=9)
    left = SparseRecoverySketch(144, 32, seed=9)
    right = SparseRecoverySketch(144, 32, seed=9)
    for u, v in tokens:
        whole.update(u * 12 + v, 1)
    for u, v in tokens[:cut]:
        left.update(u * 12 + v, 1)
    for u, v in tokens[cut:]:
        right.update(u * 12 + v, 1)
    left.combine(right)
    assert left.decode() == whole.decode()


@settings(max_examples=25, deadline=None)
@given(edges=edge_sets)
def test_agm_components_match_graph(edges):
    """AGM components equal true components on arbitrary small graphs.

    Seed is derived from the input: the whp guarantee is over the
    sketch's randomness for a fixed input graph.
    """
    graph = graph_from(edges)
    sketch = AgmSketch(12, seed=derive_seed("prop-agm", tuple(sorted(edges))))
    for u, v in sorted(edges):
        sketch.update(u, v, 1)
    mine = sorted(map(sorted, sketch.connected_components()))
    truth = sorted(map(sorted, graph.connected_components()))
    assert mine == truth


@settings(max_examples=20, deadline=None)
@given(edges=edge_sets, k=st.integers(1, 3))
def test_offline_spanner_invariants_property(edges, k):
    """For any graph and k: the offline spanner is a subgraph meeting
    the 2^k stretch bound."""
    graph = graph_from(edges)
    seed = derive_seed("prop-spanner", tuple(sorted(edges)), k)
    output = offline_two_phase_spanner(graph, k, seed=seed)
    for u, v, _ in output.spanner.edges():
        assert graph.has_edge(u, v)
    report = evaluate_multiplicative_stretch(graph, output.spanner)
    assert report.within(2 ** k)


@settings(max_examples=25, deadline=None)
@given(
    edges=edge_sets,
    deletions=st.integers(0, 5),
)
def test_agm_respects_deletions_property(edges, deletions):
    """Deleting any subset of edges leaves components of the remainder."""
    tokens = sorted(edges)
    removed = tokens[:deletions]
    remaining = {e for e in edges if e not in set(removed)}
    sketch = AgmSketch(
        12, seed=derive_seed("prop-agm-del", tuple(tokens), deletions)
    )
    for u, v in tokens:
        sketch.update(u, v, 1)
    for u, v in removed:
        sketch.update(u, v, -1)
    mine = sorted(map(sorted, sketch.connected_components()))
    truth = sorted(map(sorted, graph_from(remaining).connected_components()))
    assert mine == truth


@settings(max_examples=30, deadline=None)
@given(edges=edge_sets)
def test_update_canonicalization_property(edges):
    """EdgeUpdate always canonicalizes regardless of input orientation."""
    for u, v in edges:
        forward = EdgeUpdate(u, v, +1)
        backward = EdgeUpdate(v, u, +1)
        assert forward.pair == backward.pair == (min(u, v), max(u, v))
