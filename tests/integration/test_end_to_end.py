"""End-to-end integration across modules: realistic pipelines combining
streams, spanners, sparsifiers and verification."""

import math

import pytest

from repro.agm import ConnectivityChecker, KConnectivityCertificate
from repro.core import (
    AdditiveSpannerBuilder,
    SparsifierParams,
    SpectralSparsifier,
    TwoPassSpannerBuilder,
    WeightedTwoPassSpanner,
)
from repro.graph import (
    barbell_graph,
    bfs_distances,
    connected_gnp,
    cut_value,
    evaluate_additive_error,
    evaluate_multiplicative_stretch,
    power_law_graph,
    spectral_approximation,
    with_random_weights,
)
from repro.stream import adversarial_churn_stream, run_passes, stream_from_graph


class TestSpannerThenQueries:
    """Build once from the stream, answer many distance queries."""

    def test_query_workload_on_spanner(self):
        n = 64
        graph = power_law_graph(n, exponent=2.2, seed=1)
        stream = stream_from_graph(graph, seed=2, churn=0.4)
        output = TwoPassSpannerBuilder(n, 2, seed=3).run(stream)
        for source in range(0, n, 9):
            base = bfs_distances(graph, source)
            over = bfs_distances(output.spanner, source)
            for target, dist in base.items():
                if dist == 0:
                    continue
                assert over.get(target, math.inf) <= 4 * dist

    def test_multiple_algorithms_one_stream(self):
        """Run all three one/two-pass algorithms over the same stream."""
        n = 48
        graph = connected_gnp(n, 0.2, seed=4)
        stream = stream_from_graph(graph, seed=5, churn=0.3)

        spanner_out = TwoPassSpannerBuilder(n, 2, seed=6).run(stream)
        additive = AdditiveSpannerBuilder(n, 4, seed=7).run(stream)
        components = ConnectivityChecker(n, seed=8).run(stream)

        assert evaluate_multiplicative_stretch(graph, spanner_out.spanner).within(4)
        error, _ = evaluate_additive_error(graph, additive)
        assert error <= 6 * n / 4
        assert len(components) == 1


class TestAdversarialStreams:
    def test_two_pass_spanner_under_decoy_floods(self):
        graph = connected_gnp(32, 0.2, seed=9)
        stream = adversarial_churn_stream(graph, seed=10, rounds=3)
        output = TwoPassSpannerBuilder(32, 2, seed=11).run(stream)
        assert evaluate_multiplicative_stretch(graph, output.spanner).within(4)
        for u, v, _ in output.spanner.edges():
            assert graph.has_edge(u, v)

    def test_additive_spanner_under_decoy_floods(self):
        graph = connected_gnp(32, 0.25, seed=12)
        stream = adversarial_churn_stream(graph, seed=13, rounds=3)
        spanner = AdditiveSpannerBuilder(32, 4, seed=14).run(stream)
        for u, v, _ in spanner.edges():
            assert graph.has_edge(u, v)
        error, _ = evaluate_additive_error(graph, spanner)
        assert error <= 6 * 32 / 4

    def test_certificate_under_decoy_floods(self):
        graph = barbell_graph(8)
        stream = adversarial_churn_stream(graph, seed=15, rounds=2)
        certificate = KConnectivityCertificate(graph.num_vertices, 2, seed=16).run(stream)
        assert certificate.is_connected()
        assert certificate.has_edge(0, 8)  # the bridge survives


class TestSparsifierConsumers:
    """The sparsifier's output feeding downstream computations."""

    def test_cuts_and_spectra_downstream(self):
        graph = connected_gnp(32, 0.35, seed=17)
        params = SparsifierParams(sampling_rounds_factor=0.15)
        sparsifier = SpectralSparsifier(32, seed=18, k=2, params=params).sparsify_graph(graph)
        bounds = spectral_approximation(graph, sparsifier)
        assert bounds.epsilon() < 1.0
        # A downstream consumer estimating a specific cut family.
        for split in (8, 16, 24):
            side = set(range(split))
            base = cut_value(graph, side)
            approx = cut_value(sparsifier, side)
            assert approx == pytest.approx(base, rel=0.8)

    def test_weighted_spanner_feeds_weighted_queries(self):
        graph = with_random_weights(connected_gnp(32, 0.25, seed=19), seed=19)
        stream = stream_from_graph(graph, seed=20, churn=0.4)
        builder = WeightedTwoPassSpanner(32, 2, seed=21, w_min=1.0, w_max=16.0)
        spanner = run_passes(stream, builder)
        assert spanner.num_edges() <= graph.num_edges()
        # Spanner distances dominate true distances (upper-bound weights).
        from repro.graph import dijkstra_distances

        base = dijkstra_distances(graph, 0)
        over = dijkstra_distances(spanner, 0)
        for target, dist in over.items():
            if target in base:
                assert dist >= base[target] - 1e-9
