"""Checkpoint-seam recovery: sweeps, fallback chains, clean failures.

The durability claims under fault: a crash at *any* save epoch restores
and finishes bit-identically; a corrupted newest checkpoint falls back
to an older intact one; a torn write leaves no temp state behind and
the previous checkpoint untouched; a forced decode failure degrades one
query without poisoning the epoch cache.
"""

import pytest

from repro import faults
from repro.faults import FaultPlan, apply_corruption
from repro.service import (
    CheckpointError,
    CheckpointStore,
    GraphSession,
    load_session,
    save_session,
)
from repro.stream import mixed_workload_stream

NUM_VERTICES = 12
SEED = 1009
CHUNK = 60

SLOTS_OFF = dict(enable_spanner=False, enable_sparsifier=False)


def _chunks(tokens):
    return [tokens[i : i + CHUNK] for i in range(0, len(tokens), CHUNK)]


@pytest.fixture(scope="module")
def stream_chunks():
    return _chunks(list(mixed_workload_stream(NUM_VERTICES, 360, SEED)))


@pytest.fixture(scope="module")
def baseline(stream_chunks):
    session = GraphSession(NUM_VERTICES, SEED, **SLOTS_OFF)
    for chunk in stream_chunks:
        session.ingest_batch(chunk)
    return session


def _final_bytes(session, tmp_path, name):
    path = tmp_path / name
    save_session(session, path)
    return path.read_bytes()


class TestCrashSweep:
    def test_crash_at_every_save_epoch_restores_bit_identically(
        self, stream_chunks, baseline, tmp_path
    ):
        # Save after every chunk (keep_last covers all of them), then
        # "crash" at each epoch in turn: restore that checkpoint,
        # replay the tail, and demand byte-identical serialized state.
        store = CheckpointStore(tmp_path / "ckpt", keep_last=len(stream_chunks) + 1)
        writer = GraphSession(NUM_VERTICES, SEED, **SLOTS_OFF)
        saved = []
        for chunk in stream_chunks:
            writer.ingest_batch(chunk)
            saved.append(store.save(writer))
        expected_answers = baseline.snapshot_answers()
        expected_bytes = _final_bytes(baseline, tmp_path, "expected.bin")
        assert len(saved) == len(stream_chunks)

        for path in saved:
            resumed = load_session(path)
            replayed = 0
            for chunk in stream_chunks:
                if replayed >= resumed.updates_ingested:
                    resumed.ingest_batch(chunk)
                replayed += len(chunk)
            assert resumed.updates_ingested == baseline.updates_ingested
            assert resumed.snapshot_answers() == expected_answers
            assert (
                _final_bytes(resumed, tmp_path, "resumed.bin") == expected_bytes
            ), f"divergence after restoring {path.name}"


class TestFallbackChain:
    def _three_checkpoints(self, stream_chunks, tmp_path):
        store = CheckpointStore(tmp_path / "ckpt", keep_last=10)
        session = GraphSession(NUM_VERTICES, SEED, **SLOTS_OFF)
        for chunk in stream_chunks[:3]:
            session.ingest_batch(chunk)
            store.save(session)
        return store

    def test_load_latest_walks_past_corrupt_files(self, stream_chunks, tmp_path):
        store = self._three_checkpoints(stream_chunks, tmp_path)
        newest_first = store.checkpoints()[::-1]
        apply_corruption(
            newest_first[0], faults.FaultSpec("checkpoint-truncate", drop_bytes=9)
        )
        apply_corruption(
            newest_first[1], faults.FaultSpec("checkpoint-bitflip", offset=-4)
        )
        session = store.load_latest()
        assert session.checkpoint_fallbacks == 2
        assert session.updates_ingested == len(stream_chunks[0])
        assert session.stats().checkpoint_fallbacks == 2

    def test_all_corrupt_raises_chained_error(self, stream_chunks, tmp_path):
        store = self._three_checkpoints(stream_chunks, tmp_path)
        for path in store.checkpoints():
            apply_corruption(path, faults.FaultSpec("checkpoint-truncate"))
        with pytest.raises(CheckpointError, match="are corrupt") as excinfo:
            store.load_latest()
        # The chain points at the newest failure, and the message walks
        # the whole fallback history.
        assert excinfo.value.__cause__ is not None
        assert str(excinfo.value).count("ckpt-") >= 3

    def test_empty_store_raises(self, tmp_path):
        with pytest.raises(CheckpointError, match="no checkpoint"):
            CheckpointStore(tmp_path / "nothing").load_latest()

    def test_keep_last_prunes_oldest(self, stream_chunks, tmp_path):
        store = CheckpointStore(tmp_path / "ckpt", keep_last=2)
        session = GraphSession(NUM_VERTICES, SEED, **SLOTS_OFF)
        for chunk in stream_chunks:
            session.ingest_batch(chunk)
            store.save(session)
        remaining = store.checkpoints()
        assert len(remaining) == 2
        assert remaining[-1] == store.path_for(session.epoch)


class TestCleanFailure:
    """Satellite: error paths leave no temp state behind."""

    def test_torn_write_cleans_temp_and_preserves_previous(
        self, stream_chunks, tmp_path
    ):
        store = CheckpointStore(tmp_path / "ckpt", keep_last=10)
        session = GraphSession(NUM_VERTICES, SEED, **SLOTS_OFF)
        session.ingest_batch(stream_chunks[0])
        first = store.save(session)
        intact = first.read_bytes()

        session.ingest_batch(stream_chunks[1])
        with faults.inject(FaultPlan.parse("io-error@write=0:at_byte=48")):
            with pytest.raises(CheckpointError, match="injected I/O error"):
                store.save(session)
            # No temp file, no half-written target; the previous
            # checkpoint is byte-for-byte untouched.
            assert store.checkpoints() == [first]
            assert list((tmp_path / "ckpt").iterdir()) == [first]
            assert first.read_bytes() == intact
            # The next save ordinal is clean and succeeds.
            second = store.save(session)
        assert load_session(second).updates_ingested == session.updates_ingested

    def test_truncated_file_raises_pointed_error(self, stream_chunks, tmp_path):
        path = tmp_path / "state.bin"
        session = GraphSession(NUM_VERTICES, SEED, **SLOTS_OFF)
        session.ingest_batch(stream_chunks[0])
        save_session(session, path)
        apply_corruption(path, faults.FaultSpec("checkpoint-truncate", drop_bytes=5))
        with pytest.raises(CheckpointError, match="truncated"):
            load_session(path)
        # The failed load created nothing next to the file.
        assert list(tmp_path.iterdir()) == [path]

    def test_bitflip_fails_crc_not_garbage_decode(self, stream_chunks, tmp_path):
        path = tmp_path / "state.bin"
        session = GraphSession(NUM_VERTICES, SEED, **SLOTS_OFF)
        session.ingest_batch(stream_chunks[0])
        save_session(session, path)
        apply_corruption(path, faults.FaultSpec("checkpoint-bitflip", offset=-4))
        with pytest.raises(CheckpointError, match="CRC"):
            load_session(path)

    def test_missing_file_raises_checkpoint_error(self, tmp_path):
        with pytest.raises(CheckpointError, match="cannot read"):
            load_session(tmp_path / "absent.bin")


class TestDegradedQueries:
    def test_decode_failure_degrades_without_poisoning_cache(self, stream_chunks):
        session = GraphSession(NUM_VERTICES, SEED, **SLOTS_OFF)
        session.ingest_batch(stream_chunks[0])
        with faults.inject(FaultPlan.parse("decode-fail@query=0")):
            degraded = session.query("forest")
            assert not degraded.ok
            assert degraded.confidence == "degraded"
            assert degraded.value is None
            # Same epoch, next decode ordinal: the failure was not
            # cached, so the retry succeeds with a whp answer.
            retried = session.query("forest")
            assert retried.ok
            assert retried.confidence == "whp"
            assert retried.value is not None
        assert session.degraded_queries == 1
        assert session.stats().degraded_queries == 1

    def test_unknown_query_kind_still_raises(self, stream_chunks):
        session = GraphSession(NUM_VERTICES, SEED, **SLOTS_OFF)
        with pytest.raises(ValueError, match="unknown query kind"):
            session.query("page-rank")


class TestRotation:
    def test_rotation_survives_checkpoint_round_trip(self, stream_chunks, tmp_path):
        session = GraphSession(NUM_VERTICES, SEED, **SLOTS_OFF)
        session.ingest_batch(stream_chunks[0])
        components = session.snapshot_answers()["components"]
        assert session.rotate_sketches() == 1
        # Rotation re-derives hash families but rebuilds from the
        # exact ledger: the component partition is preserved.
        assert session.snapshot_answers()["components"] == components

        path = tmp_path / "rotated.bin"
        save_session(session, path)
        restored = load_session(path)
        assert restored.rotation == 1
        assert _final_bytes(restored, tmp_path, "again.bin") == path.read_bytes()
