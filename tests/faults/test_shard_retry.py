"""Shard-seam recovery: crashed and hung workers retried bit-exactly.

Every retry rebuilds a fresh worker from the same deterministic shard
chunk, so the replacement regenerates the identical message — the
faulted run's output must equal the unfaulted run's, byte for byte, on
both backends.
"""

from functools import partial

import pytest

from repro import faults
from repro.agm.connectivity import ConnectivityChecker
from repro.faults import FaultPlan
from repro.stream import mixed_workload_stream
from repro.stream.distributed import DegradedResult, ShardedRunner

NUM_VERTICES = 16
SEED = 2027


def _stream():
    return mixed_workload_stream(NUM_VERTICES, 200, SEED)


def _factory():
    return partial(ConnectivityChecker, NUM_VERTICES, SEED + 1)


@pytest.fixture(scope="module")
def clean_output():
    return ShardedRunner(3, backend="serial").run(_stream(), _factory()).output


class TestSerialRetry:
    def test_crash_is_retried_bit_identically(self, clean_output):
        plan = FaultPlan.parse("worker-crash@round=0:worker=1")
        with faults.inject(plan):
            result = ShardedRunner(3, backend="serial", retry_backoff=0).run(
                _stream(), _factory()
            )
        assert result.output == clean_output
        assert bool(result.degraded)
        (event,) = result.degraded.retries
        assert (event.pass_index, event.worker_id, event.attempt) == (0, 1, 0)
        assert "crash" in event.reason.lower()
        assert result.degraded.rounds_retried() == (0,)

    def test_hang_surfaces_as_exception_and_retries(self, clean_output):
        plan = FaultPlan.parse("worker-hang@round=0:worker=0")
        with faults.inject(plan):
            result = ShardedRunner(3, backend="serial", retry_backoff=0).run(
                _stream(), _factory()
            )
        assert result.output == clean_output
        assert len(result.degraded.retries) == 1

    def test_retries_exhaust_with_attempt_count(self):
        plan = FaultPlan.parse("worker-crash@round=0:worker=0:times=9")
        with faults.inject(plan):
            runner = ShardedRunner(
                3, backend="serial", max_retries=2, retry_backoff=0
            )
            with pytest.raises(RuntimeError, match="failed after 3 attempts"):
                runner.run(_stream(), _factory())

    def test_multiple_workers_faulted_in_one_round(self, clean_output):
        plan = FaultPlan.parse(
            "worker-crash@round=0:worker=0,worker-crash@round=0:worker=2:times=2"
        )
        with faults.inject(plan):
            result = ShardedRunner(3, backend="serial", retry_backoff=0).run(
                _stream(), _factory()
            )
        assert result.output == clean_output
        assert len(result.degraded.retries) == 3  # one + two attempts


class TestMpRetry:
    def test_crashed_process_worker_retried_bit_identically(self, clean_output):
        plan = FaultPlan.parse("worker-crash@round=0:worker=1")
        with faults.inject(plan):
            result = ShardedRunner(3, backend="mp", retry_backoff=0).run(
                _stream(), _factory()
            )
        assert result.output == clean_output
        assert result.degraded.rounds_retried() == (0,)

    def test_hung_process_worker_timed_out_and_retried(self, clean_output):
        plan = FaultPlan.parse("worker-hang@round=0:worker=0:hang_seconds=30")
        with faults.inject(plan):
            result = ShardedRunner(
                3, backend="mp", worker_timeout=1.0, retry_backoff=0
            ).run(_stream(), _factory())
        assert result.output == clean_output
        (event,) = result.degraded.retries
        assert "timed out" in event.reason

    def test_mp_output_matches_serial_under_faults(self, clean_output):
        # The cross-backend identity the runner promises, now under
        # the same fault plan on both backends.
        plan = FaultPlan.parse("worker-crash@round=0:worker=0")
        with faults.inject(plan):
            serial = ShardedRunner(3, backend="serial", retry_backoff=0).run(
                _stream(), _factory()
            )
            mp = ShardedRunner(3, backend="mp", retry_backoff=0).run(
                _stream(), _factory()
            )
        assert serial.output == clean_output
        assert mp.output == clean_output


class TestDegradedResult:
    def test_clean_run_reports_empty_degraded(self, clean_output):
        result = ShardedRunner(3, backend="serial").run(_stream(), _factory())
        assert result.output == clean_output
        assert not result.degraded
        assert result.degraded.rounds_retried() == ()

    def test_summary_counts_retries(self):
        plan = FaultPlan.parse("worker-crash@round=0:worker=1:times=2")
        with faults.inject(plan):
            result = ShardedRunner(3, backend="serial", retry_backoff=0).run(
                _stream(), _factory()
            )
        summary = result.degraded.summary()
        assert len(summary.splitlines()) == 2
        assert "attempt 1" in summary

    def test_runner_validates_retry_configuration(self):
        with pytest.raises(ValueError):
            ShardedRunner(2, worker_timeout=0.0)
        with pytest.raises(ValueError):
            ShardedRunner(2, max_retries=-1)
        with pytest.raises(ValueError):
            ShardedRunner(2, retry_backoff=-0.1)
