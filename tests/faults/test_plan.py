"""FaultPlan/FaultSpec: parsing, describe, and pure fire decisions."""

import pytest

from repro import faults
from repro.faults import FaultPlan, FaultSpec


class TestParsing:
    def test_empty_and_none_parse_to_empty_plan(self):
        assert not FaultPlan.parse("")
        assert not FaultPlan.parse("  ")
        assert not FaultPlan.parse("none")
        assert FaultPlan.parse("").describe() == "(no faults)"

    def test_aliases_map_to_real_fields(self):
        plan = FaultPlan.parse("worker-crash@round=2:worker=1,decode-fail@query=3")
        crash, decode = plan.specs
        assert (crash.round_index, crash.worker_id) == (2, 1)
        assert decode.query_index == 3

    def test_full_field_names_also_accepted(self):
        (spec,) = FaultPlan.parse("worker-hang@round_index=1:hang_seconds=0.5").specs
        assert spec.round_index == 1
        assert spec.hang_seconds == 0.5

    def test_hex_numerics_and_negative_offsets(self):
        (spec,) = FaultPlan.parse("checkpoint-bitflip@offset=-4:mask=0x80").specs
        assert spec.offset == -4
        assert spec.mask == 0x80

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown fault kind"):
            FaultPlan.parse("disk-melt@round=0")

    def test_unknown_parameter_rejected(self):
        with pytest.raises(ValueError, match="unknown fault parameter"):
            FaultPlan.parse("worker-crash@shard=0")

    def test_malformed_pair_rejected(self):
        with pytest.raises(ValueError, match="expected key=value"):
            FaultPlan.parse("worker-crash@round")

    def test_kind_cannot_be_overridden_via_params(self):
        with pytest.raises(ValueError, match="unknown fault parameter"):
            FaultPlan.parse("worker-crash@kind=io-error")

    def test_spec_validation(self):
        with pytest.raises(ValueError, match="times"):
            FaultSpec("worker-crash", times=0)
        with pytest.raises(ValueError, match="mask"):
            FaultSpec("checkpoint-bitflip", mask=256)

    def test_describe_names_every_spec(self):
        from repro.faults.chaos import DEFAULT_PLAN_TEXT

        text = FaultPlan.parse(DEFAULT_PLAN_TEXT).describe()
        for kind in ("io-error", "checkpoint-bitflip", "checkpoint-truncate",
                     "decode-fail", "worker-crash", "worker-hang"):
            assert kind in text


class TestFireDecisions:
    def test_worker_fault_is_pure_and_attempt_bounded(self):
        plan = FaultPlan.parse("worker-crash@round=1:worker=2:times=2")
        # Same coordinates, same answer, every time (fork-safety).
        for _ in range(3):
            assert plan.worker_fault(1, 2, 0) is plan.specs[0]
            assert plan.worker_fault(1, 2, 1) is plan.specs[0]
        # Beyond `times`, or at any other coordinate, nothing fires.
        assert plan.worker_fault(1, 2, 2) is None
        assert plan.worker_fault(0, 2, 0) is None
        assert plan.worker_fault(1, 0, 0) is None

    def test_decode_ordinals_claimed_in_sequence(self):
        injector = faults.FaultInjector(FaultPlan.parse("decode-fail@query=1:times=2"))
        injector.maybe_fail_decode("forest")  # ordinal 0: clean
        with pytest.raises(faults.InjectedDecodeFailure):
            injector.maybe_fail_decode("forest")  # ordinal 1
        with pytest.raises(faults.InjectedDecodeFailure):
            injector.maybe_fail_decode("spanner")  # ordinal 2 (site-agnostic)
        injector.maybe_fail_decode("forest")  # ordinal 3: clean again
        assert len(injector.events) == 2

    def test_decode_site_restriction(self):
        injector = faults.FaultInjector(
            FaultPlan.parse("decode-fail@query=0:times=3:site=spanner")
        )
        injector.maybe_fail_decode("forest")  # wrong site: clean
        with pytest.raises(faults.InjectedDecodeFailure):
            injector.maybe_fail_decode("spanner")

    def test_checkpoint_ordinals_claimed_in_sequence(self):
        injector = faults.FaultInjector(
            FaultPlan.parse("io-error@write=1:at_byte=10,checkpoint-truncate@write=2")
        )
        assert injector.checkpoint_faults() == faults.CheckpointFaults()
        assert injector.checkpoint_faults().fail_at_byte == 10
        bundle = injector.checkpoint_faults()
        assert bundle.fail_at_byte is None
        assert bundle.corrupt[0].kind == "checkpoint-truncate"


class TestInstall:
    def test_inject_installs_and_restores(self):
        assert faults.ACTIVE is None
        plan = FaultPlan.parse("decode-fail@query=0")
        with faults.inject(plan) as injector:
            assert faults.ACTIVE is injector
            assert injector.plan is plan
            inner = FaultPlan.parse("worker-crash@round=0")
            with faults.inject(inner) as nested:
                assert faults.ACTIVE is nested
            assert faults.ACTIVE is injector
        assert faults.ACTIVE is None

    def test_inject_restores_on_error(self):
        with pytest.raises(RuntimeError, match="boom"):
            with faults.inject(FaultPlan.parse("decode-fail@query=0")):
                raise RuntimeError("boom")
        assert faults.ACTIVE is None
