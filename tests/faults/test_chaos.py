"""The end-to-end chaos harness and the adversarial workload scenario."""

import pytest

from repro.faults import FaultPlan
from repro.faults.chaos import DEFAULT_PLAN_TEXT, run_chaos
from repro.service import GraphSession, WorkloadDriver

SLOTS_OFF = dict(enable_spanner=False, enable_sparsifier=False)


class TestRunChaos:
    @pytest.fixture(scope="class")
    def report(self, tmp_path_factory):
        return run_chaos(
            seed=11,
            num_vertices=24,
            updates=480,
            backend="serial",
            workdir=tmp_path_factory.mktemp("chaos"),
            session_kwargs=SLOTS_OFF,
        )

    def test_recovery_is_bit_identical(self, report):
        assert report.answers_identical
        assert report.shard_identical
        assert report.identical

    def test_every_planned_seam_fired(self, report):
        fired = "\n".join(report.events)
        assert "io-error" in fired
        assert "decode-fail" in fired
        assert report.save_failures == 1
        assert report.checkpoint_fallbacks == 2
        assert report.degraded_queries == 1
        assert report.shard_retries == 2  # one crash + one hang absorbed

    def test_summary_reports_the_verdict(self, report):
        summary = report.summary()
        assert "BIT-IDENTICAL" in summary
        assert "DIVERGED" not in summary
        assert report.plan == FaultPlan.parse(DEFAULT_PLAN_TEXT).describe()

    def test_no_faults_plan_is_trivially_identical(self, tmp_path):
        report = run_chaos(
            seed=3,
            num_vertices=16,
            updates=200,
            backend="serial",
            plan=FaultPlan(),
            workdir=tmp_path,
            session_kwargs=SLOTS_OFF,
        )
        assert report.identical
        assert report.events == ()
        assert report.save_failures == 0
        assert report.shard_retries == 0


class TestAdversarialWorkload:
    def _run(self, rotate_every, seed=41):
        session = GraphSession(24, seed, **SLOTS_OFF)
        driver = WorkloadDriver(session)
        report = driver.run_adversarial(
            rounds=6, edges_per_round=8, seed=seed, rotate_every=rotate_every
        )
        return session, report

    def test_scenario_is_deterministic(self):
        _, first = self._run(rotate_every=0)
        _, second = self._run(rotate_every=0)
        assert first == second
        assert first.rounds == 6
        assert first.edges_inserted == 48
        # The adversary really deletes what the forest revealed.
        assert first.deletions > 0

    def test_rotation_mitigation_arms_on_schedule(self):
        session, report = self._run(rotate_every=2)
        assert report.rotations == 3
        assert session.rotation == 3
        # Rotation rebuilds from the exact ledger: the session still
        # agrees with itself after the full adversarial run.
        from repro.service import components_match_ledger

        assert components_match_ledger(session)

    def test_mitigation_on_off_comparison(self):
        # The adversary replays identically either way (same seed, same
        # per-round rng), so the two runs differ only in the armed
        # mitigation — the comparison is structural, never flaky.
        _, off = self._run(rotate_every=0)
        _, on = self._run(rotate_every=2)
        assert off.rotations == 0
        assert on.rotations == 3
        assert on.edges_inserted == off.edges_inserted
        assert on.rounds == off.rounds
        # Anomaly counts are a whp property, not asserted equal; both
        # runs must at least report a well-formed anomaly record.
        assert all(0 <= r < off.rounds for r in off.anomaly_rounds)
        assert all(0 <= r < on.rounds for r in on.anomaly_rounds)

    def test_validation(self):
        session = GraphSession(8, 1, **SLOTS_OFF)
        driver = WorkloadDriver(session)
        with pytest.raises(ValueError):
            driver.run_adversarial(rounds=0, edges_per_round=4, seed=1)
        with pytest.raises(ValueError):
            driver.run_adversarial(rounds=1, edges_per_round=0, seed=1)

    def test_summary_mentions_rotations(self):
        _, report = self._run(rotate_every=3)
        assert "sketch rotations" in report.summary()
