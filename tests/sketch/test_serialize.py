"""Tests for sketch-state serialization."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.agm import AgmSketch
from repro.sketch import (
    CountSketch,
    DistinctElementsSketch,
    L0Sampler,
    LinearHashTable,
    NeighborhoodHashTable,
    OneSparseDetector,
    SparseRecoverySketch,
    deserialize_sketch,
    pack_ints,
    serialize_sketch,
    serialized_size_bytes,
    unpack_ints,
)


class TestVarintCodec:
    def test_round_trip_basic(self):
        values = [0, 1, -1, 127, 128, -128, 10**6, -(10**6)]
        assert unpack_ints(pack_ints(values)) == values

    def test_round_trip_huge_values(self):
        values = [2**61 - 1, -(2**61), 2**200, -(2**200) + 1]
        assert unpack_ints(pack_ints(values)) == values

    def test_empty(self):
        assert pack_ints([]) == b""
        assert unpack_ints(b"") == []

    def test_zero_is_one_byte(self):
        assert len(pack_ints([0])) == 1

    def test_zeros_compress(self):
        mostly_zero = [0] * 1000 + [12345]
        packed = pack_ints(mostly_zero)
        assert len(packed) < 1010

    def test_truncated_stream_rejected(self):
        packed = pack_ints([10**9])
        with pytest.raises(ValueError):
            unpack_ints(packed[:-1] + bytes([packed[-1] | 0x80]))

    @settings(max_examples=100, deadline=None)
    @given(values=st.lists(st.integers(min_value=-(2**80), max_value=2**80)))
    def test_round_trip_property(self, values):
        assert unpack_ints(pack_ints(values)) == values


class TestStateInts:
    def test_one_sparse_detector(self):
        detector = OneSparseDetector(100, seed=1)
        detector.update(5, 3)
        state = detector.state_ints()
        assert len(state) == 3
        clone = OneSparseDetector(100, seed=1)
        clone.load_state_vector(tuple(state))
        assert clone.decode().index == 5

    def test_sparse_recovery_state_reflects_updates(self):
        sketch = SparseRecoverySketch(1000, 4, seed=2)
        empty_state = sketch.state_ints()
        assert all(v == 0 for v in empty_state)
        sketch.update(10, 1)
        assert any(v != 0 for v in sketch.state_ints())

    def test_serialized_size_grows_with_content(self):
        sketch = SparseRecoverySketch(1000, 8, seed=3)
        empty_size = serialized_size_bytes(sketch)
        for i in range(8):
            sketch.update(i * 101, 1)
        assert serialized_size_bytes(sketch) > empty_size

    def test_all_sketch_types_serializable(self):
        sketches = [
            SparseRecoverySketch(100, 4, seed=4),
            L0Sampler(100, seed=5),
            DistinctElementsSketch(100, seed=6),
            CountSketch(100, 4, seed=7),
            AgmSketch(10, seed=8),
            LinearHashTable(16, 3, 4, seed=9),
            NeighborhoodHashTable(16, 4, seed=10),
        ]
        for sketch in sketches:
            size = serialized_size_bytes(sketch)
            assert size > 0
            assert unpack_ints(pack_ints(sketch.state_ints())) == sketch.state_ints()

    def test_hash_tables_expose_state_ints(self):
        # Regression: the tables advertised combine() but state_ints()
        # raised AttributeError, breaking serialized_size_bytes on them.
        table = LinearHashTable(key_domain=8, payload_len=2, capacity=2, seed=1)
        table.add_payload(3, [2**61 - 1, -(2**61)])
        assert serialized_size_bytes(table) > 0
        neighborhood = NeighborhoodHashTable(8, 2, seed=2)
        neighborhood.add_neighbor(key=3, neighbor=5, delta=1)
        assert serialized_size_bytes(neighborhood) > 0

    def test_from_state_ints_rejects_wrong_length(self):
        detector = OneSparseDetector(100, seed=1)
        with pytest.raises(ValueError):
            detector.from_state_ints([1, 2])
        sketch = SparseRecoverySketch(100, 4, seed=2)
        with pytest.raises(ValueError):
            sketch.from_state_ints([0])

    def test_additive_builder_message(self):
        from repro.core import AdditiveSpannerBuilder
        from repro.stream.updates import EdgeUpdate

        builder = AdditiveSpannerBuilder(16, 2, seed=9)
        empty_message = serialized_size_bytes(builder)
        builder.begin_pass(0)
        for u in range(15):
            builder.process(EdgeUpdate(u, u + 1, +1), 0)
        loaded_message = serialized_size_bytes(builder)
        assert loaded_message > empty_message


# Deltas spanning the regimes the protocol must survive: zero-adjacent,
# negative, int64-boundary, and well past 2^64.
_EXTREME_DELTAS = [1, -1, 3, -(2**63), 2**64 + 7, -(2**70 + 11), 2**61 - 1]


def _round_trip(sketch, fresh):
    """serialize -> deserialize into a fresh instance -> compare state."""
    blob = serialize_sketch(sketch)
    clone = deserialize_sketch(fresh, blob)
    assert clone.state_ints() == sketch.state_ints()
    return clone


class TestFromStateInts:
    """from_state_ints is the exact inverse of state_ints for every
    sketch class, bigint cells included."""

    def test_one_sparse_detector(self):
        detector = OneSparseDetector(1000, seed=1)
        for i, delta in enumerate(_EXTREME_DELTAS):
            detector.update(i * 99, delta)
        clone = _round_trip(detector, OneSparseDetector(1000, seed=1))
        assert clone.decode() == detector.decode()

    def test_sparse_recovery_including_bigints(self):
        sketch = SparseRecoverySketch(1000, 8, seed=2)
        for i, delta in enumerate(_EXTREME_DELTAS):
            sketch.update(i * 101, delta)
        clone = _round_trip(sketch, SparseRecoverySketch(1000, 8, seed=2))
        assert clone.decode() == sketch.decode()

    def test_count_sketch(self):
        sketch = CountSketch(1000, 4, seed=3)
        for i, delta in enumerate(_EXTREME_DELTAS):
            sketch.update(i * 37, delta)
        clone = _round_trip(sketch, CountSketch(1000, 4, seed=3))
        assert clone.estimate(0) == sketch.estimate(0)

    def test_distinct_elements(self):
        sketch = DistinctElementsSketch(1000, seed=4)
        for i, delta in enumerate(_EXTREME_DELTAS):
            sketch.update(i * 53, delta)
        clone = _round_trip(sketch, DistinctElementsSketch(1000, seed=4))
        assert clone.estimate() == sketch.estimate()

    def test_l0_sampler(self):
        sampler = L0Sampler(1000, seed=5)
        for i, delta in enumerate(_EXTREME_DELTAS):
            sampler.update(i * 71, delta)
        clone = _round_trip(sampler, L0Sampler(1000, seed=5))
        assert clone.sample() == sampler.sample()

    def test_linear_hash_table(self):
        table = LinearHashTable(key_domain=32, payload_len=3, capacity=4, seed=6)
        table.add_payload(7, [2**61 - 1, -(2**64), 5])
        table.add_payload(21, [1, 0, -(2**61)])
        clone = _round_trip(table, LinearHashTable(32, 3, 4, seed=6))
        assert clone.decode() == table.decode()

    def test_neighborhood_hash_table(self):
        table = NeighborhoodHashTable(32, 4, seed=7)
        table.add_neighbor(key=3, neighbor=11, delta=1)
        table.add_neighbor(key=9, neighbor=27, delta=1)
        clone = _round_trip(table, NeighborhoodHashTable(32, 4, seed=7))
        decoded, expected = clone.decode_neighbors(), table.decode_neighbors()
        assert decoded is not None and expected is not None
        assert decoded.keys() == expected.keys()

    def test_agm_sketch(self):
        sketch = AgmSketch(12, seed=8)
        sketch.update(0, 5, 1)
        sketch.update(5, 11, 1)
        sketch.update(0, 5, -1)
        clone = _round_trip(sketch, AgmSketch(12, seed=8))
        assert clone.spanning_forest() == sketch.spanning_forest()

    @settings(max_examples=40, deadline=None)
    @given(
        updates=st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=499),
                st.integers(min_value=-(2**70), max_value=2**70),
            ),
            max_size=30,
        )
    )
    def test_round_trip_property_sparse_recovery(self, updates):
        sketch = SparseRecoverySketch(500, 4, seed="prop")
        for index, delta in updates:
            sketch.update(index, delta)
        state = sketch.state_ints()
        assert unpack_ints(pack_ints(state)) == state
        clone = SparseRecoverySketch(500, 4, seed="prop").from_state_ints(state)
        assert clone.state_ints() == state

    @settings(max_examples=25, deadline=None)
    @given(
        updates=st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=199),
                st.integers(min_value=-(2**70), max_value=2**70),
            ),
            max_size=20,
        )
    )
    def test_round_trip_property_l0_sampler(self, updates):
        sampler = L0Sampler(200, seed="prop")
        for index, delta in updates:
            sampler.update(index, delta)
        blob = serialize_sketch(sampler)
        clone = deserialize_sketch(L0Sampler(200, seed="prop"), blob)
        assert clone.state_ints() == sampler.state_ints()
