"""Tests for sketch-state serialization."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.agm import AgmSketch
from repro.sketch import (
    CountSketch,
    DistinctElementsSketch,
    L0Sampler,
    OneSparseDetector,
    SparseRecoverySketch,
    pack_ints,
    serialized_size_bytes,
    unpack_ints,
)


class TestVarintCodec:
    def test_round_trip_basic(self):
        values = [0, 1, -1, 127, 128, -128, 10**6, -(10**6)]
        assert unpack_ints(pack_ints(values)) == values

    def test_round_trip_huge_values(self):
        values = [2**61 - 1, -(2**61), 2**200, -(2**200) + 1]
        assert unpack_ints(pack_ints(values)) == values

    def test_empty(self):
        assert pack_ints([]) == b""
        assert unpack_ints(b"") == []

    def test_zero_is_one_byte(self):
        assert len(pack_ints([0])) == 1

    def test_zeros_compress(self):
        mostly_zero = [0] * 1000 + [12345]
        packed = pack_ints(mostly_zero)
        assert len(packed) < 1010

    def test_truncated_stream_rejected(self):
        packed = pack_ints([10**9])
        with pytest.raises(ValueError):
            unpack_ints(packed[:-1] + bytes([packed[-1] | 0x80]))

    @settings(max_examples=100, deadline=None)
    @given(values=st.lists(st.integers(min_value=-(2**80), max_value=2**80)))
    def test_round_trip_property(self, values):
        assert unpack_ints(pack_ints(values)) == values


class TestStateInts:
    def test_one_sparse_detector(self):
        detector = OneSparseDetector(100, seed=1)
        detector.update(5, 3)
        state = detector.state_ints()
        assert len(state) == 3
        clone = OneSparseDetector(100, seed=1)
        clone.load_state_vector(tuple(state))
        assert clone.decode().index == 5

    def test_sparse_recovery_state_reflects_updates(self):
        sketch = SparseRecoverySketch(1000, 4, seed=2)
        empty_state = sketch.state_ints()
        assert all(v == 0 for v in empty_state)
        sketch.update(10, 1)
        assert any(v != 0 for v in sketch.state_ints())

    def test_serialized_size_grows_with_content(self):
        sketch = SparseRecoverySketch(1000, 8, seed=3)
        empty_size = serialized_size_bytes(sketch)
        for i in range(8):
            sketch.update(i * 101, 1)
        assert serialized_size_bytes(sketch) > empty_size

    def test_all_sketch_types_serializable(self):
        sketches = [
            SparseRecoverySketch(100, 4, seed=4),
            L0Sampler(100, seed=5),
            DistinctElementsSketch(100, seed=6),
            CountSketch(100, 4, seed=7),
            AgmSketch(10, seed=8),
        ]
        for sketch in sketches:
            size = serialized_size_bytes(sketch)
            assert size > 0
            assert unpack_ints(pack_ints(sketch.state_ints())) == sketch.state_ints()

    def test_additive_builder_message(self):
        from repro.core import AdditiveSpannerBuilder
        from repro.stream.updates import EdgeUpdate

        builder = AdditiveSpannerBuilder(16, 2, seed=9)
        empty_message = serialized_size_bytes(builder)
        builder.begin_pass(0)
        for u in range(15):
            builder.process(EdgeUpdate(u, u + 1, +1), 0)
        loaded_message = serialized_size_bytes(builder)
        assert loaded_message > empty_message
