"""Tests for the distinct-elements (L0) estimator."""

import pytest

from repro.sketch.distinct import DistinctElementsSketch


def make(domain=100_000, seed=1, reps=32):
    return DistinctElementsSketch(domain, seed, reps=reps)


class TestEstimates:
    def test_zero_vector(self):
        assert make().estimate() == 0.0

    def test_insert_then_delete_is_zero(self):
        sketch = make()
        for index in range(50):
            sketch.update(index, 1)
        for index in range(50):
            sketch.update(index, -1)
        assert sketch.estimate() == 0.0

    @pytest.mark.parametrize("true_count", [1, 4, 16, 64, 256, 1024])
    def test_factor_two_accuracy(self, true_count):
        """The guard use case only needs a factor-2 estimate."""
        sketch = make(seed=true_count)
        for index in range(true_count):
            sketch.update(index * 7, 1)
        estimate = sketch.estimate()
        assert true_count / 2 <= estimate <= true_count * 2

    def test_multiplicities_do_not_inflate(self):
        sketch = make(seed=5)
        for index in range(32):
            sketch.update(index, 9)  # large values, still 32 distinct
        estimate = sketch.estimate()
        assert 16 <= estimate <= 64

    def test_deletions_tracked(self):
        sketch = make(seed=6)
        for index in range(256):
            sketch.update(index, 1)
        for index in range(192):
            sketch.update(index, -1)
        estimate = sketch.estimate()
        assert 32 <= estimate <= 128  # true count is 64


class TestGuardUseCase:
    def test_decodability_guard_threshold(self):
        """The paper's guard declares a SKETCH_B undecodable when the
        estimated support exceeds 2B; check both sides of the threshold."""
        budget = 16
        small = make(seed=7)
        for index in range(budget // 2):
            small.update(index, 1)
        assert small.estimate() <= 2 * budget

        big = make(seed=8)
        for index in range(budget * 20):
            big.update(index, 1)
        assert big.estimate() > 2 * budget


class TestLinearity:
    def test_combine_counts_union(self):
        left = make(seed=9)
        right = make(seed=9)
        for index in range(100):
            left.update(index, 1)
        for index in range(100, 200):
            right.update(index, 1)
        left.combine(right)
        assert 100 <= left.estimate() <= 400

    def test_combine_subtract_cancels(self):
        left = make(seed=10)
        right = make(seed=10)
        for index in range(64):
            left.update(index, 1)
            right.update(index, 1)
        left.combine(right, sign=-1)
        assert left.estimate() == 0.0

    def test_combine_rejects_different_seed(self):
        with pytest.raises(ValueError):
            make(seed=1).combine(make(seed=2))


class TestValidation:
    def test_rejects_bad_domain(self):
        with pytest.raises(ValueError):
            DistinctElementsSketch(0, seed=1)

    def test_rejects_tiny_reps(self):
        with pytest.raises(ValueError):
            DistinctElementsSketch(10, seed=1, reps=2)

    def test_rejects_out_of_domain(self):
        with pytest.raises(IndexError):
            make(domain=5).update(5, 1)

    def test_space_words_positive(self):
        assert make().space_words() > 0
