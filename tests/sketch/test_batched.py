"""Batch engine correctness: kernels and scalar/batched bit-identity.

Two layers of guarantees:

* the numpy field-arithmetic kernels in :mod:`repro.sketch.batched`
  agree exactly with Python's arbitrary-precision arithmetic;
* every sketch's ``update_batch`` lands in *bit-identical* state to the
  equivalent sequence of scalar ``update`` calls — including interleaved
  inserts/deletes, zero deltas, arbitrary-precision deltas (the
  fallback path), arbitrary chunkings, and interaction with ``combine``.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sketch import (
    MERSENNE_61,
    CountSketch,
    DistinctElementsSketch,
    KWiseHash,
    L0Sampler,
    NeighborhoodHashTable,
    NestedSampler,
    OneSparseDetector,
    SparseRecoverySketch,
)
from repro.sketch.batched import (
    mulmod61,
    polyhash61,
    powmod61,
    scatter_sum_mod61,
    sum_mod61,
)

DOMAIN = 2_000

field_elements = st.integers(min_value=0, max_value=MERSENNE_61 - 1)


class TestKernels:
    @given(a=field_elements, b=field_elements)
    @settings(max_examples=200, deadline=None)
    def test_mulmod61_matches_python(self, a, b):
        result = mulmod61(np.array([a], dtype=np.uint64), np.array([b], dtype=np.uint64))
        assert int(result[0]) == a * b % MERSENNE_61

    @given(
        coefficients=st.lists(field_elements, min_size=1, max_size=8),
        xs=st.lists(st.integers(min_value=0, max_value=MERSENNE_61 - 1), min_size=1, max_size=16),
    )
    @settings(max_examples=100, deadline=None)
    def test_polyhash61_is_horner(self, coefficients, xs):
        values = polyhash61(coefficients, np.array(xs, dtype=np.int64) % MERSENNE_61)
        for x, value in zip(xs, values):
            acc = 0
            for coefficient in coefficients:
                acc = (acc * x + coefficient) % MERSENNE_61
            assert int(value) == acc

    @given(
        base=st.integers(min_value=1, max_value=MERSENNE_61 - 1),
        exponents=st.lists(st.integers(min_value=0, max_value=2**40), min_size=1, max_size=16),
    )
    @settings(max_examples=100, deadline=None)
    def test_powmod61_matches_pow(self, base, exponents):
        values = powmod61(base, np.array(exponents, dtype=np.int64))
        for exponent, value in zip(exponents, values):
            assert int(value) == pow(base, exponent, MERSENNE_61)

    @given(terms=st.lists(field_elements, min_size=0, max_size=64))
    @settings(max_examples=100, deadline=None)
    def test_sum_mod61(self, terms):
        assert sum_mod61(np.array(terms, dtype=np.uint64)) == sum(terms) % MERSENNE_61

    @given(
        entries=st.lists(
            st.tuples(st.integers(min_value=0, max_value=7), field_elements),
            min_size=0,
            max_size=64,
        )
    )
    @settings(max_examples=100, deadline=None)
    def test_scatter_sum_mod61(self, entries):
        positions = np.array([cell for cell, _ in entries], dtype=np.int64)
        terms = np.array([term for _, term in entries], dtype=np.uint64)
        result = scatter_sum_mod61(8, positions, terms)
        for cell in range(8):
            expected = sum(term for position, term in entries if position == cell)
            assert int(result[cell]) == expected % MERSENNE_61


class TestVectorizedHashing:
    def test_values_array_matches_scalar(self):
        hash_function = KWiseHash.shared(6, "batched-test")
        xs = np.arange(0, 5_000, 7, dtype=np.int64)
        values = hash_function.values_array(xs)
        for x, value in zip(xs, values):
            assert int(value) == hash_function(int(x))

    def test_bucket_array_matches_scalar(self):
        hash_function = KWiseHash.shared(4, "bucket-test")
        xs = np.arange(0, 3_000, 11, dtype=np.int64)
        buckets = hash_function.bucket_array(xs, 37)
        for x, bucket in zip(xs, buckets):
            assert int(bucket) == hash_function.bucket(int(x), 37)

    def test_level_array_matches_scalar(self):
        sampler = NestedSampler(24, "level-test")
        xs = np.arange(0, 50_000, 13, dtype=np.int64)
        levels = sampler.level_array(xs)
        for x, level in zip(xs, levels):
            assert int(level) == sampler.level(int(x))

    def test_level_agrees_with_contains(self):
        sampler = NestedSampler(12, "contains-test")
        for x in range(500):
            level = sampler.level(x)
            for j in range(sampler.max_level + 1):
                assert sampler.contains(x, j) == (j <= level)


update_batches = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=DOMAIN - 1),
        st.integers(min_value=-3, max_value=3),
    ),
    min_size=0,
    max_size=300,
)


def _apply_scalar(sketch, updates):
    for index, delta in updates:
        sketch.update(index, delta)


def _apply_batched(sketch, updates, chunk):
    for start in range(0, len(updates), chunk):
        piece = updates[start : start + chunk]
        sketch.update_batch(
            [index for index, _ in piece], [delta for _, delta in piece]
        )


SKETCH_FACTORIES = [
    lambda: CountSketch(DOMAIN, 4, seed="prop"),
    lambda: SparseRecoverySketch(DOMAIN, 4, seed="prop"),
    lambda: OneSparseDetector(DOMAIN, seed="prop"),
    lambda: L0Sampler(DOMAIN, seed="prop"),
    lambda: DistinctElementsSketch(DOMAIN, seed="prop", reps=4),
]


class TestBitIdentity:
    @given(updates=update_batches, chunk=st.integers(min_value=1, max_value=301))
    @settings(max_examples=25, deadline=None)
    def test_batch_equals_scalar_sequence(self, updates, chunk):
        for factory in SKETCH_FACTORIES:
            scalar, batched = factory(), factory()
            _apply_scalar(scalar, updates)
            _apply_batched(batched, updates, chunk)
            assert scalar.state_ints() == batched.state_ints()

    @given(
        first=update_batches,
        second=update_batches,
        sign=st.sampled_from([1, -1]),
    )
    @settings(max_examples=15, deadline=None)
    def test_combine_mixes_scalar_and_batched(self, first, second, sign):
        for factory in SKETCH_FACTORIES:
            scalar_a, scalar_b = factory(), factory()
            _apply_scalar(scalar_a, first)
            _apply_scalar(scalar_b, second)
            scalar_a.combine(scalar_b, sign)

            batched_a, batched_b = factory(), factory()
            _apply_batched(batched_a, first, 64)
            _apply_batched(batched_b, second, 64)
            batched_a.combine(batched_b, sign)

            assert scalar_a.state_ints() == batched_a.state_ints()

    @given(
        updates=st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=DOMAIN - 1),
                st.integers(min_value=-(2**61), max_value=2**61),
            ),
            min_size=0,
            max_size=60,
        )
    )
    @settings(max_examples=15, deadline=None)
    def test_arbitrary_precision_deltas(self, updates):
        # The int64 fast path must hand off to the exact fallback when
        # serialized-payload-sized deltas appear.
        scalar = SparseRecoverySketch(DOMAIN, 4, seed="prop")
        batched = SparseRecoverySketch(DOMAIN, 4, seed="prop")
        _apply_scalar(scalar, updates)
        batched.update_batch(
            [index for index, _ in updates], [delta for _, delta in updates]
        )
        assert scalar.state_ints() == batched.state_ints()

    def test_int64_min_delta_is_exact(self):
        # np.abs(-2**63) wraps in int64; the guard must still route this
        # batch off the int64 scatter fast path (it fits int64, so the
        # bigint fallback is not taken either).
        updates = [(index, 1) for index in range(400)] + [(7, -(2**63))]
        for factory in SKETCH_FACTORIES:
            scalar, batched = factory(), factory()
            _apply_scalar(scalar, updates)
            _apply_batched(batched, updates, len(updates))
            assert scalar.state_ints() == batched.state_ints()

    def test_interleaved_insert_delete_cancels(self):
        sketch = L0Sampler(DOMAIN, seed="cancel")
        indices = list(range(0, 500, 5))
        sketch.update_batch(indices, [1] * len(indices))
        sketch.update_batch(indices, [-1] * len(indices))
        assert sketch.is_probably_zero()
        assert all(value == 0 for value in sketch.state_ints())

    def test_zero_deltas_are_no_ops(self):
        sketch = SparseRecoverySketch(DOMAIN, 4, seed="zeros")
        before = sketch.state_ints()
        sketch.update_batch([1, 2, 3], [0, 0, 0])
        assert sketch.state_ints() == before

    def test_out_of_domain_batch_rejected(self):
        sketch = SparseRecoverySketch(DOMAIN, 4, seed="bounds")
        try:
            sketch.update_batch([0, DOMAIN], [1, 1])
        except IndexError:
            pass
        else:
            raise AssertionError("out-of-domain batch must raise IndexError")


class TestNeighborhoodTableBatch:
    @given(
        entries=st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=59),
                st.integers(min_value=0, max_value=59),
                st.sampled_from([1, -1]),
            ),
            min_size=0,
            max_size=120,
        )
    )
    @settings(max_examples=15, deadline=None)
    def test_batched_table_decodes_identically(self, entries):
        scalar = NeighborhoodHashTable(60, 16, seed="table-prop")
        batched = NeighborhoodHashTable(60, 16, seed="table-prop")
        for key, neighbor, sign in entries:
            scalar.add_neighbor(key, neighbor, sign)
        batched.add_neighbors_batch(
            [key for key, _, _ in entries],
            [neighbor for _, neighbor, _ in entries],
            [sign for _, _, sign in entries],
        )
        assert scalar.decode_neighbors() == batched.decode_neighbors()
