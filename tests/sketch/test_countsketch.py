"""Tests for CountSketch (the paper's alternative to Theorem 8)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sketch.countsketch import CountSketch
from repro.sketch.sparse_recovery import SparseRecoverySketch


def make(domain=5000, budget=8, seed=1, **kwargs):
    return CountSketch(domain, budget, seed, **kwargs)


class TestPointQueries:
    def test_zero_vector(self):
        sketch = make()
        assert sketch.estimate(17) == 0

    def test_single_entry_exact(self):
        sketch = make()
        sketch.update(42, 7)
        assert sketch.estimate(42) == 7
        assert sketch.estimate(43) == 0

    def test_sparse_vector_exact(self):
        sketch = make(budget=8)
        entries = {i * 101: i + 1 for i in range(8)}
        for index, value in entries.items():
            sketch.update(index, value)
        for index, value in entries.items():
            assert sketch.estimate(index) == value

    def test_deletions_cancel(self):
        sketch = make()
        sketch.update(5, 3)
        sketch.update(5, -3)
        sketch.update(9, 2)
        assert sketch.estimate(5) == 0
        assert sketch.estimate(9) == 2

    def test_negative_values(self):
        sketch = make()
        sketch.update(3, -11)
        assert sketch.estimate(3) == -11


class TestDecode:
    def test_full_domain_decode(self):
        sketch = make(domain=300, budget=6)
        entries = {10: 1, 20: -2, 30: 3}
        for index, value in entries.items():
            sketch.update(index, value)
        assert sketch.decode() == entries

    def test_candidate_decode(self):
        sketch = make(budget=6)
        sketch.update(100, 5)
        sketch.update(200, 6)
        assert sketch.decode(candidates=[100, 150]) == {100: 5}

    def test_not_self_verifying(self):
        """Overfull CountSketch gives *noisy* output rather than None —
        the documented tradeoff vs the peeling decoder."""
        sketch = make(domain=500, budget=2, depth=3, width_factor=1.0)
        truth = {}
        for i in range(60):
            sketch.update(i * 7 % 500, 1)
            truth[i * 7 % 500] = truth.get(i * 7 % 500, 0) + 1
        decoded = sketch.decode()
        assert isinstance(decoded, dict)  # never None


class TestLinearity:
    def test_combine(self):
        left = make(seed=2)
        right = make(seed=2)
        left.update(1, 2)
        right.update(1, 3)
        right.update(7, 4)
        left.combine(right)
        assert left.estimate(1) == 5
        assert left.estimate(7) == 4

    def test_subtract(self):
        left = make(seed=3)
        right = make(seed=3)
        left.update(4, 9)
        right.update(4, 9)
        left.combine(right, sign=-1)
        assert left.estimate(4) == 0

    def test_combine_rejects_different_seed(self):
        with pytest.raises(ValueError):
            make(seed=1).combine(make(seed=2))

    def test_copy_independent(self):
        sketch = make(seed=4)
        sketch.update(2, 2)
        clone = sketch.copy()
        clone.update(2, 1)
        assert sketch.estimate(2) == 2
        assert clone.estimate(2) == 3


class TestSpaceTradeoff:
    def test_smaller_than_peeling_sketch_at_equal_budget(self):
        """The remark's point: CountSketch saves the logarithmic factors
        (here: the 3x counter cells and fingerprint words)."""
        count = CountSketch(100_000, 16, seed=5)
        peeling = SparseRecoverySketch(100_000, 16, seed=5)
        assert count.space_words() < peeling.space_words()

    def test_validation(self):
        with pytest.raises(ValueError):
            CountSketch(0, 4, seed=1)
        with pytest.raises(ValueError):
            CountSketch(10, 0, seed=1)
        with pytest.raises(ValueError):
            CountSketch(10, 4, seed=1, depth=4)  # even depth
        with pytest.raises(IndexError):
            make(domain=10).update(10, 1)
        with pytest.raises(IndexError):
            make(domain=10).estimate(10)


@settings(max_examples=80, deadline=None)
@given(
    entries=st.dictionaries(
        keys=st.integers(min_value=0, max_value=999),
        values=st.integers(min_value=-50, max_value=50).filter(lambda v: v != 0),
        max_size=6,
    )
)
def test_point_query_property(entries):
    """Property: point queries on <=6-sparse vectors are exact whp.

    The guarantee is "with high probability over the *seed*" for any
    fixed input, so it is tested in that form: across several
    independently seeded sketches (seeds derived from the input, so the
    example search cannot adversarially target one fixed hash function),
    a strong majority must answer every point query exactly.  A single
    seed would make the test a coin with a tiny but real failure mass
    that a long-running example database eventually finds.
    """
    from repro.util.rng import derive_seed

    trials, exact = 5, 0
    for trial in range(trials):
        seed = derive_seed("cs-property", trial, tuple(sorted(entries.items())))
        sketch = CountSketch(1000, 6, seed=seed, depth=7, width_factor=8.0)
        for index, value in entries.items():
            sketch.update(index, value)
        if all(sketch.estimate(index) == value for index, value in entries.items()):
            exact += 1
    assert exact >= trials - 1, f"only {exact}/{trials} seeds were exact"
