"""Tests for k-wise independent hashing and nested samplers."""

import collections

import pytest

from repro.sketch.hashing import MERSENNE_61, KWiseHash, NestedSampler


class TestKWiseHash:
    def test_deterministic_for_same_seed(self):
        first = KWiseHash(4, seed=42)
        second = KWiseHash(4, seed=42)
        assert [first(x) for x in range(100)] == [second(x) for x in range(100)]

    def test_different_seeds_differ(self):
        first = KWiseHash(4, seed=1)
        second = KWiseHash(4, seed=2)
        assert [first(x) for x in range(32)] != [second(x) for x in range(32)]

    def test_range(self):
        hasher = KWiseHash(6, seed=7)
        for x in range(1000):
            assert 0 <= hasher(x) < MERSENNE_61

    def test_unit_in_unit_interval(self):
        hasher = KWiseHash(4, seed=9)
        for x in range(1000):
            assert 0.0 <= hasher.unit(x) < 1.0

    def test_bucket_range_and_spread(self):
        hasher = KWiseHash(4, seed=3)
        counts = collections.Counter(hasher.bucket(x, 8) for x in range(8000))
        assert set(counts) <= set(range(8))
        # Roughly uniform: every bucket within 30% of the mean.
        for bucket in range(8):
            assert 0.7 * 1000 < counts[bucket] < 1.3 * 1000

    def test_included_marginal_rate(self):
        hasher = KWiseHash(8, seed=5)
        hits = sum(1 for x in range(20000) if hasher.included(x, 0.25))
        assert 0.22 * 20000 < hits < 0.28 * 20000

    def test_pairwise_independence_statistic(self):
        # For a pair (x, y), events {h(x) even} and {h(y) even} should be
        # nearly independent; measure the joint frequency.
        hasher = KWiseHash(4, seed=11)
        joint = sum(
            1 for x in range(0, 4000, 2) if hasher(x) % 2 == 0 and hasher(x + 1) % 2 == 0
        )
        assert 0.2 * 2000 < joint < 0.3 * 2000

    def test_invalid_k_rejected(self):
        with pytest.raises(ValueError):
            KWiseHash(0, seed=1)

    def test_invalid_bucket_count_rejected(self):
        hasher = KWiseHash(4, seed=1)
        with pytest.raises(ValueError):
            hasher.bucket(3, 0)

    def test_space_words(self):
        assert KWiseHash(4, seed=1).space_words() == 4
        assert KWiseHash(16, seed=1).space_words() == 16


class TestNestedSampler:
    def test_levels_are_nested(self):
        sampler = NestedSampler(max_level=10, seed=13)
        for x in range(500):
            deepest = sampler.level(x)
            for j in range(deepest + 1):
                assert sampler.contains(x, j)
            if deepest < sampler.max_level:
                assert not sampler.contains(x, deepest + 1)

    def test_level_zero_contains_everything(self):
        sampler = NestedSampler(max_level=6, seed=17)
        assert all(sampler.contains(x, 0) for x in range(200))

    def test_geometric_level_distribution(self):
        sampler = NestedSampler(max_level=20, seed=19)
        n = 40000
        at_least_one = sum(1 for x in range(n) if sampler.level(x) >= 1)
        at_least_two = sum(1 for x in range(n) if sampler.level(x) >= 2)
        assert 0.45 * n < at_least_one < 0.55 * n
        assert 0.2 * n < at_least_two < 0.3 * n

    def test_max_level_caps(self):
        sampler = NestedSampler(max_level=3, seed=23)
        assert all(sampler.level(x) <= 3 for x in range(2000))

    def test_negative_max_level_rejected(self):
        with pytest.raises(ValueError):
            NestedSampler(max_level=-1, seed=1)

    def test_deterministic(self):
        first = NestedSampler(max_level=8, seed=29)
        second = NestedSampler(max_level=8, seed=29)
        assert [first.level(x) for x in range(300)] == [second.level(x) for x in range(300)]
