"""Cross-backend bit-identity for the pluggable field kernels.

The dispatch seam (:mod:`repro.sketch.kernels`) promises that every
backend — ``reference`` (the audited numpy oracle), ``limb`` (the fused
in-place fast path) and ``native`` (the optional C kernels) — lands the
*same canonical residues* in ``[0, p)`` on every input.  This suite is
that promise's enforcement: hypothesis drives random operands, the
boundary rail pins the field's edge cases (0, ``p - 1``, ``p``,
``2^61``, ``2^64 - 1``), and the selection tests pin the env-var /
fallback semantics the CI kernel matrix relies on.
"""

import os
import shutil
import subprocess

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sketch import kernels
from repro.sketch.hashing import MERSENNE_61
from repro.sketch.kernels import limb as limb_mod
from repro.sketch.kernels import native as native_mod
from repro.sketch.kernels import reference as ref_mod

P = MERSENNE_61

#: Field-edge operands every elementwise comparison must include: the
#: canonical extremes and the limb rails (a full low limb, a full high
#: limb, the 29-bit fold boundary).  The documented kernel contract is
#: operands in ``[0, p)`` — sanitize mode asserts it — so the rail stays
#: canonical; non-canonical keys are exercised by the polyhash tests,
#: whose normalization is part of the kernel.
BOUNDARY = [
    0, 1, 2, (1 << 29) - 1, 1 << 29, (1 << 32) - 1, 1 << 32,
    ((1 << 28) - 1) << 32, P - 2, P - 1,
]

#: Raw 64-bit keys for the hash kernels, which normalize internally.
RAW_KEYS = [0, 1, P - 1, P, P + 1, 1 << 61, (1 << 61) + 5, 2 * P - 1]

_NATIVE_TABLE, _NATIVE_REASON = native_mod.load()

#: Backend tables under test: the limb overrides always, the native
#: table when this machine can build it (CI exercises both paths).
BACKENDS = [pytest.param(limb_mod, id="limb")]
if _NATIVE_TABLE is not None:
    BACKENDS.append(pytest.param(_NATIVE_TABLE, id="native"))


def impl(backend, name):
    """Backend's kernel, falling back to reference (the layering rule)."""
    return getattr(backend, name, None) or getattr(ref_mod, name)


def uint64s(min_size=0, max_size=64):
    return st.lists(
        st.integers(min_value=0, max_value=(1 << 64) - 1),
        min_size=min_size, max_size=max_size,
    )


def as_u64(values):
    return np.array(values, dtype=np.uint64)


def assert_same(expected, actual):
    expected, actual = np.asarray(expected), np.asarray(actual)
    assert expected.dtype == actual.dtype
    np.testing.assert_array_equal(expected, actual)


# -- elementwise kernels ----------------------------------------------


@pytest.mark.parametrize("backend", BACKENDS)
@given(pairs=st.lists(st.tuples(
    st.integers(min_value=0, max_value=P - 1),
    st.integers(min_value=0, max_value=P - 1),
), max_size=64))
@settings(max_examples=50, deadline=None)
def test_mulmod61_matches_reference(backend, pairs):
    pairs = pairs + [(a, b) for a in BOUNDARY for b in BOUNDARY]
    a = as_u64([p[0] for p in pairs])
    b = as_u64([p[1] for p in pairs])
    assert_same(ref_mod.mulmod61(a, b), impl(backend, "mulmod61")(a, b))


@pytest.mark.parametrize("backend", BACKENDS)
@given(values=uint64s())
@settings(max_examples=50, deadline=None)
def test_add_sub_match_reference(backend, values):
    # add/sub take canonical residues (their callers guarantee it).
    canon = as_u64([v % P for v in values + BOUNDARY])
    rolled = np.roll(canon, 1)
    assert_same(ref_mod.addmod61(canon, rolled), impl(backend, "addmod61")(canon, rolled))
    assert_same(ref_mod.submod61(canon, rolled), impl(backend, "submod61")(canon, rolled))


@pytest.mark.parametrize("backend", BACKENDS)
@given(coeffs=uint64s(min_size=1, max_size=8), xs=uint64s())
@settings(max_examples=50, deadline=None)
def test_polyhash61_matches_reference(backend, coeffs, xs):
    # uint64 keys are in-contract below 2p (one conditional fold).
    keys = as_u64([x % (2 * P) for x in xs] + RAW_KEYS)
    coefficients = [c % P for c in coeffs]
    assert_same(
        ref_mod.polyhash61(coefficients, keys),
        impl(backend, "polyhash61")(coefficients, keys),
    )


@pytest.mark.parametrize("backend", BACKENDS)
@given(
    matrix=st.lists(uint64s(min_size=4, max_size=4), min_size=1, max_size=5),
    xs=uint64s(),
)
@settings(max_examples=50, deadline=None)
def test_polyhash61_multi_matches_reference(backend, matrix, xs):
    coeff_matrix = as_u64([[c % P for c in row] for row in matrix])
    keys = as_u64([x % (2 * P) for x in xs] + RAW_KEYS)
    assert_same(
        ref_mod.polyhash61_multi(coeff_matrix, keys),
        impl(backend, "polyhash61_multi")(coeff_matrix, keys),
    )


@pytest.mark.parametrize("backend", BACKENDS)
@given(
    matrix=st.lists(uint64s(min_size=3, max_size=3), min_size=2, max_size=5),
    data=st.data(),
)
@settings(max_examples=50, deadline=None)
def test_polyhash61_rows_matches_reference(backend, matrix, data):
    coeff_matrix = as_u64([[c % P for c in row] for row in matrix])
    n = data.draw(st.integers(min_value=0, max_value=48))
    row_ids = np.array(
        data.draw(st.lists(
            st.integers(min_value=0, max_value=len(matrix) - 1),
            min_size=n, max_size=n,
        )),
        dtype=np.int64,
    )
    keys = as_u64(data.draw(st.lists(
        st.integers(min_value=0, max_value=P - 1), min_size=n, max_size=n,
    )))
    assert_same(
        ref_mod.polyhash61_rows(coeff_matrix, row_ids, keys),
        impl(backend, "polyhash61_rows")(coeff_matrix, row_ids, keys),
    )


@pytest.mark.parametrize("backend", BACKENDS)
@given(
    base=st.integers(min_value=0, max_value=P - 1),
    exponents=st.lists(st.integers(min_value=0, max_value=1 << 40), max_size=48),
)
@settings(max_examples=50, deadline=None)
def test_powmod61_windowed_matches_reference(backend, base, exponents):
    exponents = exponents + [0, 1, 255, 256, 65535, 1 << 24]
    exp = np.array(exponents, dtype=np.int64)
    table = ref_mod.build_pow_table(base, int(exp.max()))
    assert_same(
        ref_mod.powmod61_windowed(exp, table),
        impl(backend, "powmod61_windowed")(exp, table),
    )
    # The windowed path must agree with the scalar-pow path too.
    assert_same(
        as_u64([pow(base, int(e), P) for e in exponents]),
        impl(backend, "powmod61_windowed")(exp, table),
    )


@pytest.mark.parametrize("backend", BACKENDS)
@given(
    cells=st.integers(min_value=1, max_value=16),
    data=st.data(),
)
@settings(max_examples=50, deadline=None)
def test_scatter_sum_mod61_matches_reference(backend, cells, data):
    n = data.draw(st.integers(min_value=0, max_value=64))
    positions = np.array(
        data.draw(st.lists(
            st.integers(min_value=0, max_value=cells - 1),
            min_size=n, max_size=n,
        )),
        dtype=np.int64,
    )
    # Spill-forcing magnitudes: many max-value terms in one cell
    # overflow the 64-bit planes unless the implementation handles
    # carries exactly like the reference does.
    terms = as_u64(data.draw(st.lists(
        st.sampled_from([0, 1, P - 1, (1 << 61) - 2, (1 << 32) - 1]),
        min_size=n, max_size=n,
    )))
    assert_same(
        ref_mod.scatter_sum_mod61(cells, positions, terms),
        impl(backend, "scatter_sum_mod61")(cells, positions, terms),
    )


@pytest.mark.parametrize("backend", BACKENDS)
@given(data=st.data())
@settings(max_examples=30, deadline=None)
def test_stack_positions_terms_matches_reference(backend, data):
    rows = data.draw(st.integers(min_value=1, max_value=4))
    buckets = data.draw(st.integers(min_value=1, max_value=32))
    coeff_matrix = as_u64([
        [data.draw(st.integers(min_value=0, max_value=P - 1)) for _ in range(4)]
        for _ in range(rows)
    ])
    n = data.draw(st.integers(min_value=0, max_value=48))
    indices = np.array(
        data.draw(st.lists(
            st.integers(min_value=0, max_value=1 << 20), min_size=n, max_size=n,
        )),
        dtype=np.int64,
    )
    residues = as_u64(data.draw(st.lists(
        st.integers(min_value=0, max_value=P - 1), min_size=n, max_size=n,
    )))
    base = data.draw(st.integers(min_value=2, max_value=P - 1))
    table = ref_mod.build_pow_table(base, 1 << 20)
    want_pos, want_terms = ref_mod.stack_positions_terms(
        coeff_matrix, table, indices, residues, buckets
    )
    got_pos, got_terms = impl(backend, "stack_positions_terms")(
        coeff_matrix, table, indices, residues, buckets
    )
    assert_same(want_pos, got_pos)
    assert_same(want_terms, got_terms)


# -- negative deltas through the caller-facing coercion ----------------


@given(deltas=st.lists(st.integers(min_value=-(1 << 62), max_value=1 << 62), max_size=64))
@settings(max_examples=50, deadline=None)
def test_negative_deltas_coerce_identically(deltas):
    """Signed deltas enter the kernels via as_field_array; both fast
    backends must multiply the resulting residues identically."""
    from repro.sketch.batched import as_field_array

    residues = as_field_array(np.array(deltas + [-1, -(P - 1), -P], dtype=object))
    other = np.roll(residues, 1)
    want = ref_mod.mulmod61(residues, other)
    assert_same(want, limb_mod.mulmod61(residues, other))
    if _NATIVE_TABLE is not None:
        assert_same(want, _NATIVE_TABLE.mulmod61(residues, other))


# -- scratch-buffer independence ---------------------------------------


def test_limb_outputs_are_fresh_arrays():
    """Public limb kernels must never leak their scratch pool: two
    back-to-back calls return independent arrays."""
    a = as_u64([5, P - 1, 1 << 40])
    b = as_u64([7, P - 1, 3])
    first = limb_mod.mulmod61(a, b)
    snapshot = first.copy()
    limb_mod.mulmod61(b, a)
    assert_same(snapshot, first)


# -- selection / env semantics -----------------------------------------


@pytest.fixture
def restore_backend():
    previous = kernels.active_backend()
    yield
    kernels.select_backend(previous)


def test_auto_and_empty_select_limb(restore_backend):
    assert kernels.select_backend("auto") == "limb"
    assert kernels.select_backend(None) == "limb"
    assert kernels.select_backend("") == "limb"
    assert kernels.active_backend() == "limb"


def test_explicit_selection_and_unknown_name(restore_backend):
    assert kernels.select_backend("reference") == "reference"
    assert kernels.active_backend() == "reference"
    with pytest.raises(ValueError, match="unknown kernel backend"):
        kernels.select_backend("simd")
    # A failed selection leaves the previous backend active.
    assert kernels.active_backend() == "reference"


def test_dispatch_follows_selection(restore_backend):
    """Call sites that imported the dispatch functions before a swap
    must follow it — the wrappers delegate through the active table."""
    a, b = as_u64([3, P - 1]), as_u64([5, P - 1])
    kernels.select_backend("reference")
    want = kernels.mulmod61(a, b)
    kernels.select_backend("limb")
    assert_same(want, kernels.mulmod61(a, b))


def test_env_var_is_honored_in_a_fresh_process():
    code = (
        "from repro.sketch import kernels; print(kernels.active_backend())"
    )
    for env_value, expect in [("reference", "reference"), ("limb", "limb"), ("", "limb")]:
        env = dict(os.environ, REPRO_KERNEL=env_value)
        env["PYTHONPATH"] = "src"
        result = subprocess.run(
            ["python", "-c", code], capture_output=True, text=True, env=env,
            cwd=os.path.dirname(os.path.dirname(os.path.dirname(os.path.abspath(__file__)))),
        )
        assert result.returncode == 0, result.stderr
        assert result.stdout.strip() == expect


def test_native_without_compiler_falls_back_to_limb(restore_backend, monkeypatch):
    """No compiler -> selecting native silently serves limb, and the
    reason is inspectable (the CI matrix asserts this on bare runners)."""
    monkeypatch.setattr(shutil, "which", lambda name: None)
    monkeypatch.setattr(native_mod, "_CACHE", {})
    assert kernels.select_backend("native") == "limb"
    reason = kernels.native_fallback_reason()
    assert reason is not None and "compiler" in reason
    # The fallback still computes — through the limb table.
    a, b = as_u64([3, P - 2]), as_u64([5, P - 1])
    assert_same(ref_mod.mulmod61(a, b), kernels.mulmod61(a, b))


def test_native_selection_on_this_machine(restore_backend):
    """Whatever this container has, selecting native must land on a
    working backend and stay bit-identical to the oracle."""
    landed = kernels.select_backend("native")
    assert landed in ("native", "limb")
    if landed == "limb":
        assert kernels.native_fallback_reason() is not None
    a = as_u64(BOUNDARY)
    b = np.roll(a, 3)
    assert_same(ref_mod.mulmod61(a, b), kernels.mulmod61(a, b))
