"""Tests for SKETCH_B / DECODE (exact sparse recovery)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sketch.sparse_recovery import SparseRecoverySketch


def make(domain=10_000, budget=8, seed=1, **kwargs):
    return SparseRecoverySketch(domain, budget, seed, **kwargs)


class TestExactRecovery:
    def test_empty_decodes_to_empty(self):
        assert make().decode() == {}

    def test_single_entry(self):
        sketch = make()
        sketch.update(123, 7)
        assert sketch.decode() == {123: 7}

    def test_full_budget_recovered(self):
        sketch = make(budget=8)
        expected = {i * 37: i + 1 for i in range(8)}
        for index, value in expected.items():
            sketch.update(index, value)
        assert sketch.decode() == expected

    def test_deletions_cancel(self):
        sketch = make()
        sketch.update(5, 3)
        sketch.update(9, 2)
        sketch.update(5, -3)
        assert sketch.decode() == {9: 2}

    def test_multigraph_multiplicities(self):
        sketch = make()
        for _ in range(5):
            sketch.update(77, 1)
        assert sketch.decode() == {77: 5}

    def test_negative_values_recovered(self):
        sketch = make()
        sketch.update(1, -9)
        sketch.update(2, 4)
        assert sketch.decode() == {1: -9, 2: 4}

    def test_large_values_recovered(self):
        # Payload serialization pushes ~2^61-sized values through sketches.
        sketch = make()
        big = (1 << 61) - 3
        sketch.update(10, big)
        sketch.update(20, -big)
        assert sketch.decode() == {10: big, 20: -big}

    def test_overfull_reported_as_failure(self):
        sketch = make(budget=4)
        for index in range(200):
            sketch.update(index, 1)
        assert sketch.decode() is None

    def test_overfull_then_deletions_recovers(self):
        sketch = make(budget=4)
        for index in range(100):
            sketch.update(index, 1)
        for index in range(98):
            sketch.update(index, -1)
        assert sketch.decode() == {98: 1, 99: 1}

    def test_decode_support(self):
        sketch = make()
        sketch.update(30, 2)
        sketch.update(10, 1)
        assert sketch.decode_support() == [10, 30]

    def test_is_zero(self):
        sketch = make()
        assert sketch.is_zero()
        sketch.update(1, 1)
        assert not sketch.is_zero()
        sketch.update(1, -1)
        assert sketch.is_zero()


class TestLinearity:
    def test_sum_of_sketches_decodes_sum_of_vectors(self):
        left = make(seed=11)
        right = make(seed=11)
        left.update(1, 2)
        left.update(3, 4)
        right.update(3, 1)
        right.update(8, 5)
        left.combine(right)
        assert left.decode() == {1: 2, 3: 5, 8: 5}

    def test_subtraction_reveals_difference(self):
        full = make(seed=12)
        partial = make(seed=12)
        for index in range(6):
            full.update(index, 1)
        for index in range(4):
            partial.update(index, 1)
        full.combine(partial, sign=-1)
        assert full.decode() == {4: 1, 5: 1}

    def test_combine_rejects_different_seeds(self):
        with pytest.raises(ValueError):
            make(seed=1).combine(make(seed=2))

    def test_copy_is_independent(self):
        sketch = make()
        sketch.update(4, 4)
        clone = sketch.copy()
        clone.update(5, 5)
        assert sketch.decode() == {4: 4}
        assert clone.decode() == {4: 4, 5: 5}


class TestValidation:
    def test_rejects_bad_domain(self):
        with pytest.raises(ValueError):
            SparseRecoverySketch(0, 4, seed=1)

    def test_rejects_bad_budget(self):
        with pytest.raises(ValueError):
            SparseRecoverySketch(10, 0, seed=1)

    def test_rejects_single_row(self):
        with pytest.raises(ValueError):
            SparseRecoverySketch(10, 4, seed=1, rows=1)

    def test_rejects_out_of_domain_update(self):
        sketch = make(domain=10)
        with pytest.raises(IndexError):
            sketch.update(10, 1)

    def test_space_words_positive_and_scales(self):
        small = make(budget=4)
        large = make(budget=64)
        assert 0 < small.space_words() < large.space_words()


class TestReliability:
    def test_decode_reliability_at_budget(self):
        """Decode must succeed on >=99% of random exactly-at-budget vectors."""
        failures = 0
        trials = 100
        for trial in range(trials):
            sketch = SparseRecoverySketch(5000, 8, seed=1000 + trial)
            indices = [(trial * 131 + i * 977) % 5000 for i in range(8)]
            for index in set(indices):
                sketch.update(index, 1)
            if sketch.decode() is None:
                failures += 1
        assert failures <= 1

    def test_no_false_decodes_when_overfull(self):
        """An overfull sketch must never silently return a wrong vector."""
        for trial in range(50):
            sketch = SparseRecoverySketch(5000, 4, seed=2000 + trial)
            expected = {}
            for i in range(40):
                index = (trial * 389 + i * 613) % 5000
                sketch.update(index, 1)
                expected[index] = expected.get(index, 0) + 1
            decoded = sketch.decode()
            if decoded is not None:
                assert decoded == expected


@settings(max_examples=100, deadline=None)
@given(
    entries=st.dictionaries(
        keys=st.integers(min_value=0, max_value=999),
        values=st.integers(min_value=-100, max_value=100).filter(lambda v: v != 0),
        max_size=6,
    )
)
def test_recovery_property(entries):
    """Property: decode is never *wrong*, and a <=6-sparse vector
    round-trips for at least one of three independently seeded sketches.

    The seeds are derived from the drawn entries: with one fixed seed
    the hash functions are fixed, and an adversarial input search (which
    is exactly what Hypothesis does) can always find a pair colliding in
    every row — recovery is a whp guarantee over the seed, not a
    worst-case one.  Soundness (no incorrect decode) *is* worst-case and
    is asserted on every trial.
    """
    entry_key = ",".join(f"{i}:{v}" for i, v in sorted(entries.items()))
    recovered = False
    for trial in range(3):
        sketch = SparseRecoverySketch(1000, 6, seed=f"recovery-{trial}-{entry_key}")
        for index, value in entries.items():
            sketch.update(index, value)
        decoded = sketch.decode()
        assert decoded is None or decoded == entries
        if decoded is not None:
            recovered = True
            break
    assert recovered, "recovery failed under three independent seeds"


@settings(max_examples=60, deadline=None)
@given(
    left_entries=st.dictionaries(
        keys=st.integers(min_value=0, max_value=499),
        values=st.integers(min_value=-10, max_value=10).filter(lambda v: v != 0),
        max_size=3,
    ),
    right_entries=st.dictionaries(
        keys=st.integers(min_value=0, max_value=499),
        values=st.integers(min_value=-10, max_value=10).filter(lambda v: v != 0),
        max_size=3,
    ),
)
def test_linearity_property(left_entries, right_entries):
    """Property: sketch(x) + sketch(y) decodes to x + y."""
    left = SparseRecoverySketch(500, 6, seed=777)
    right = SparseRecoverySketch(500, 6, seed=777)
    for index, value in left_entries.items():
        left.update(index, value)
    for index, value in right_entries.items():
        right.update(index, value)
    left.combine(right)
    expected = dict(left_entries)
    for index, value in right_entries.items():
        expected[index] = expected.get(index, 0) + value
    expected = {i: v for i, v in expected.items() if v != 0}
    assert left.decode() == expected
