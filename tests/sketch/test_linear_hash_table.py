"""Tests for the linear hash tables H^u_j."""

import pytest

from repro.sketch.linear_hash_table import LinearHashTable, NeighborhoodHashTable
from repro.sketch.onesparse import DecodeStatus


class TestLinearHashTable:
    def test_empty_decodes_empty(self):
        table = LinearHashTable(key_domain=100, payload_len=3, capacity=8, seed=1)
        assert table.decode() == {}

    def test_single_key_round_trip(self):
        table = LinearHashTable(key_domain=100, payload_len=3, capacity=8, seed=1)
        table.add_payload(7, [1, 2, 3])
        assert table.decode() == {7: [1, 2, 3]}

    def test_payloads_accumulate(self):
        table = LinearHashTable(key_domain=100, payload_len=2, capacity=8, seed=2)
        table.add_payload(5, [1, 10])
        table.add_payload(5, [2, 20])
        assert table.decode() == {5: [3, 30]}

    def test_many_keys_recovered(self):
        table = LinearHashTable(key_domain=1000, payload_len=3, capacity=16, seed=3)
        expected = {}
        for key in range(0, 160, 10):
            payload = [key, key + 1, key + 2]
            table.add_payload(key, payload)
            expected[key] = payload
        assert table.decode() == expected

    def test_zero_component_payload(self):
        table = LinearHashTable(key_domain=50, payload_len=3, capacity=4, seed=4)
        table.add_payload(3, [0, 5, 0])
        assert table.decode() == {3: [0, 5, 0]}

    def test_cancelled_payload_disappears(self):
        table = LinearHashTable(key_domain=50, payload_len=2, capacity=4, seed=5)
        table.add_payload(3, [1, 2])
        table.add_payload(3, [1, 2], sign=-1)
        assert table.decode() == {}

    def test_overfull_detected(self):
        table = LinearHashTable(key_domain=1000, payload_len=3, capacity=4, seed=6)
        for key in range(100):
            table.add_payload(key, [1, 1, 1])
        assert table.decode() is None

    def test_combine_merges_tables(self):
        left = LinearHashTable(key_domain=100, payload_len=2, capacity=8, seed=7)
        right = LinearHashTable(key_domain=100, payload_len=2, capacity=8, seed=7)
        left.add_payload(1, [1, 0])
        right.add_payload(2, [0, 2])
        left.combine(right)
        assert left.decode() == {1: [1, 0], 2: [0, 2]}

    def test_validation(self):
        with pytest.raises(ValueError):
            LinearHashTable(key_domain=0, payload_len=1, capacity=1, seed=1)
        with pytest.raises(ValueError):
            LinearHashTable(key_domain=1, payload_len=0, capacity=1, seed=1)
        with pytest.raises(ValueError):
            LinearHashTable(key_domain=1, payload_len=1, capacity=0, seed=1)
        table = LinearHashTable(key_domain=10, payload_len=2, capacity=2, seed=1)
        with pytest.raises(IndexError):
            table.add_to_payload(10, 0, 1)
        with pytest.raises(IndexError):
            table.add_to_payload(0, 2, 1)
        with pytest.raises(ValueError):
            table.add_payload(0, [1])

    def test_space_words_positive(self):
        table = LinearHashTable(key_domain=10, payload_len=2, capacity=2, seed=1)
        assert table.space_words() > 0


class TestNeighborhoodHashTable:
    def test_single_neighbor_recovered(self):
        table = NeighborhoodHashTable(num_vertices=100, capacity=8, seed=1)
        table.add_neighbor(key=7, neighbor=42, delta=1)
        decoded = table.decode_neighbors()
        assert decoded is not None
        assert set(decoded) == {7}
        result = decoded[7]
        assert result.status is DecodeStatus.ONE_SPARSE
        assert result.index == 42
        assert result.value == 1

    def test_multiple_keys(self):
        table = NeighborhoodHashTable(num_vertices=200, capacity=16, seed=2)
        for key in range(10):
            table.add_neighbor(key=key, neighbor=100 + key, delta=1)
        decoded = table.decode_neighbors()
        assert decoded is not None
        for key in range(10):
            assert decoded[key].status is DecodeStatus.ONE_SPARSE
            assert decoded[key].index == 100 + key

    def test_two_neighbors_not_one_sparse(self):
        table = NeighborhoodHashTable(num_vertices=100, capacity=8, seed=3)
        table.add_neighbor(key=5, neighbor=10, delta=1)
        table.add_neighbor(key=5, neighbor=11, delta=1)
        decoded = table.decode_neighbors()
        assert decoded is not None
        assert decoded[5].status is DecodeStatus.NOT_ONE_SPARSE

    def test_deleted_neighbor_drops_key(self):
        table = NeighborhoodHashTable(num_vertices=100, capacity=8, seed=4)
        table.add_neighbor(key=5, neighbor=10, delta=1)
        table.add_neighbor(key=5, neighbor=10, delta=-1)
        decoded = table.decode_neighbors()
        assert decoded == {}

    def test_delete_one_of_two_neighbors(self):
        table = NeighborhoodHashTable(num_vertices=100, capacity=8, seed=5)
        table.add_neighbor(key=5, neighbor=10, delta=1)
        table.add_neighbor(key=5, neighbor=11, delta=1)
        table.add_neighbor(key=5, neighbor=10, delta=-1)
        decoded = table.decode_neighbors()
        assert decoded is not None
        assert decoded[5].status is DecodeStatus.ONE_SPARSE
        assert decoded[5].index == 11

    def test_overfull_detected(self):
        table = NeighborhoodHashTable(num_vertices=500, capacity=4, seed=6)
        for key in range(100):
            table.add_neighbor(key=key, neighbor=key + 200, delta=1)
        assert table.decode_neighbors() is None

    def test_combine(self):
        left = NeighborhoodHashTable(num_vertices=100, capacity=8, seed=7)
        right = NeighborhoodHashTable(num_vertices=100, capacity=8, seed=7)
        left.add_neighbor(key=1, neighbor=50, delta=1)
        right.add_neighbor(key=2, neighbor=60, delta=1)
        left.combine(right)
        decoded = left.decode_neighbors()
        assert decoded is not None
        assert decoded[1].index == 50
        assert decoded[2].index == 60

    def test_space_words_positive(self):
        table = NeighborhoodHashTable(num_vertices=10, capacity=2, seed=1)
        assert table.space_words() > 0
