"""Tests for the L0 sampler."""

import collections

import pytest

from repro.sketch.l0sampler import L0Sampler


def make(domain=10_000, seed=1, budget=4):
    return L0Sampler(domain, seed, budget=budget)


class TestSampling:
    def test_zero_vector_returns_none(self):
        sampler = make()
        assert sampler.sample() is None
        assert sampler.is_probably_zero()

    def test_single_coordinate(self):
        sampler = make()
        sampler.update(42, 3)
        assert sampler.sample() == (42, 3)

    def test_sample_from_support(self):
        sampler = make(seed=2)
        support = {i * 11: i + 1 for i in range(100)}
        for index, value in support.items():
            sampler.update(index, value)
        sampled = sampler.sample()
        assert sampled is not None
        index, value = sampled
        assert support[index] == value

    def test_deletions_respected(self):
        sampler = make(seed=3)
        for index in range(20):
            sampler.update(index, 1)
        for index in range(19):
            sampler.update(index, -1)
        assert sampler.sample() == (19, 1)

    def test_negative_values_sampled(self):
        sampler = make(seed=4)
        sampler.update(10, -5)
        assert sampler.sample() == (10, -5)

    def test_success_rate_over_seeds(self):
        """Sampling must succeed on nearly all nonzero vectors."""
        successes = 0
        trials = 60
        for trial in range(trials):
            sampler = L0Sampler(5000, seed=100 + trial)
            for i in range(50):
                sampler.update((trial * 97 + i * 131) % 5000, 1)
            if sampler.sample() is not None:
                successes += 1
        assert successes >= trials - 2

    def test_spread_across_support(self):
        """Different seeds should sample different support elements (the
        property Boruvka rounds rely on for fresh sampler stacks)."""
        support = [i * 13 for i in range(64)]
        seen = set()
        for seed in range(40):
            sampler = L0Sampler(2000, seed=seed)
            for index in support:
                sampler.update(index, 1)
            sampled = sampler.sample()
            if sampled is not None:
                seen.add(sampled[0])
        assert len(seen) >= 10


class TestLinearity:
    def test_combined_samplers_merge_support(self):
        left = make(seed=7)
        right = make(seed=7)
        left.update(5, 1)
        right.update(5, -1)
        right.update(6, 1)
        left.combine(right)
        assert left.sample() == (6, 1)

    def test_combine_rejects_different_seed(self):
        with pytest.raises(ValueError):
            make(seed=1).combine(make(seed=2))

    def test_copy_is_independent(self):
        sampler = make(seed=8)
        sampler.update(3, 1)
        clone = sampler.copy()
        clone.update(3, -1)
        assert sampler.sample() == (3, 1)
        assert clone.sample() is None


class TestValidation:
    def test_rejects_bad_domain(self):
        with pytest.raises(ValueError):
            L0Sampler(0, seed=1)

    def test_space_words_positive(self):
        assert make().space_words() > 0
