"""The ``REPRO_SANITIZE=1`` runtime sanitizer.

Two arms: armed kernels must accept every canonical input unchanged
(the whole tier-1 sketch suite also runs under ``make test-sanitize``)
and must *trip* on seeded violations — a non-canonical operand, a float
array, an out-of-range scatter position, an aliased clone.  Disarmed
(the default), nothing may raise.
"""

import importlib

import numpy as np
import pytest

from repro.service.session import GraphSession
from repro.sketch import batched
from repro.sketch.hashing import MERSENNE_61
from repro.stream.updates import EdgeUpdate
from repro.util import sanitize


@pytest.fixture
def armed(monkeypatch):
    monkeypatch.setattr(sanitize, "ENABLED", True)


CANONICAL = np.array([0, 1, 12345, MERSENNE_61 - 1], dtype=np.uint64)


def test_armed_kernels_accept_canonical_operands(armed):
    other = np.array([5, 0, MERSENNE_61 - 1, 7], dtype=np.uint64)
    assert int(batched.addmod61(CANONICAL, other)[0]) == 5
    batched.submod61(CANONICAL, other)
    batched.mulmod61(CANONICAL, other)
    batched.sum_mod61(CANONICAL)
    batched.scatter_sum_mod61(4, np.array([0, 1, 2, 3]), CANONICAL)


def test_armed_mulmod_trips_on_overflow(armed):
    # p itself is the canonical-range violation: == p, not < p.
    seeded = np.array([MERSENNE_61], dtype=np.uint64)
    with pytest.raises(sanitize.SanitizeError, match="canonical"):
        batched.mulmod61(seeded, np.array([1], dtype=np.uint64))


def test_armed_addmod_trips_on_overflow(armed):
    seeded = np.array([MERSENNE_61 + 5], dtype=np.uint64)
    with pytest.raises(sanitize.SanitizeError):
        batched.addmod61(CANONICAL[:1], seeded)


def test_armed_kernels_trip_on_float_contamination(armed):
    floats = np.array([1.0, 2.0])
    with pytest.raises(sanitize.SanitizeError, match="float"):
        batched.sum_mod61(floats)


def test_armed_scatter_trips_on_position_out_of_range(armed):
    terms = np.array([1, 2], dtype=np.uint64)
    with pytest.raises(sanitize.SanitizeError, match="position"):
        batched.scatter_sum_mod61(2, np.array([0, 2]), terms)
    with pytest.raises(sanitize.SanitizeError, match="position"):
        batched.scatter_sum_mod61(2, np.array([-1, 0]), terms)


def test_disarmed_kernels_skip_all_checks(monkeypatch):
    monkeypatch.setattr(sanitize, "ENABLED", False)
    seeded = np.array([MERSENNE_61], dtype=np.uint64)
    batched.mulmod61(seeded, seeded)  # wraps silently; must not raise
    batched.sum_mod61(seeded)


def test_enabled_reads_environment_at_import(monkeypatch):
    monkeypatch.setenv("REPRO_SANITIZE", "1")
    assert importlib.reload(sanitize).ENABLED
    monkeypatch.setenv("REPRO_SANITIZE", "0")
    assert not importlib.reload(sanitize).ENABLED


# -- clone independence ------------------------------------------------


class _AliasingClone:
    """A deliberately broken clone: shares its live counter buffer."""

    def __init__(self):
        self.counters = np.zeros(8, dtype=np.uint64)
        self.nested = {"rows": [np.ones(4, dtype=np.uint64)]}

    def clone(self):
        twin = _AliasingClone.__new__(_AliasingClone)
        twin.counters = self.counters  # the bug: aliased, not copied
        twin.nested = {"rows": [np.array(self.nested["rows"][0])]}
        return twin


def test_aliasing_clone_trips():
    original = _AliasingClone()
    with pytest.raises(sanitize.SanitizeError, match="aliases"):
        sanitize.check_clone_independent(original, original.clone())


def test_independent_clone_passes():
    original = _AliasingClone()
    twin = original.clone()
    twin.counters = np.array(original.counters)
    sanitize.check_clone_independent(original, twin)


def test_shared_hash_tables_are_exempt():
    class WithSharedTables:
        def __init__(self, table):
            self._pow_table = table  # interned by design
            self.state = np.zeros(4, dtype=np.uint64)

    table = np.arange(16, dtype=np.uint64)
    original = WithSharedTables(table)
    twin = WithSharedTables(table)
    sanitize.check_clone_independent(original, twin)


def test_zero_size_arrays_are_exempt():
    class Empty:
        def __init__(self, buf):
            self.buf = buf

    shared_empty = np.empty(0, dtype=np.uint64)
    sanitize.check_clone_independent(Empty(shared_empty), Empty(shared_empty))


def test_session_snapshots_pass_armed(armed):
    session = GraphSession(12, "sanitize-session", k=2)
    for u, v in [(0, 1), (1, 2), (2, 3), (4, 5), (5, 6), (0, 3), (7, 8)]:
        session.ingest(EdgeUpdate(u, v, 1))
    session.spanner_snapshot()
    session.sparsifier_snapshot()
    assert session.connected(0, 1)
