"""Columnar sketch stacks: bit-identity against the per-sketch engine.

The columnar layer (:mod:`repro.sketch.columnar`) stores many
same-shaped sketches as one 2-D array and promises state *bit-identical*
to the standalone sketch classes under every path combination: scalar
vs. scattered updates, aggregated chunks, clone, spill, sharded
serialization round trips, and checkpoint/restore.  These tests pin that
promise for the raw stacks and for the three algorithm-level consumers
(AGM connectivity, the two-pass spanner, the streaming sparsifier —
weighted and unweighted).  Longer-stream (10^5-token) identity is
asserted by ``benchmarks/bench_columnar.py``, which runs both engines
anyway to measure the speedup it gates.
"""

from __future__ import annotations

import numpy as np
import pytest

import repro.sketch.columnar as columnar_module
from repro.agm.connectivity import ConnectivityChecker
from repro.agm.spanning_forest import AgmSketch
from repro.core.parameters import SparsifierParams
from repro.core.sparsify import StreamingSparsifier, StreamingWeightedSparsifier
from repro.core.two_pass_spanner import TwoPassSpannerBuilder
from repro.service import GraphSession, load_session
from repro.sketch.columnar import L0SamplerStack, SketchStack
from repro.sketch.l0sampler import L0Sampler
from repro.sketch.sparse_recovery import SparseRecoverySketch
from repro.stream.batching import aggregate_updates, updates_to_arrays
from repro.stream.generators import mixed_workload_stream
from repro.util.rng import rng_from_seed

SLIM = SparsifierParams(estimate_levels=2, sampling_levels=2, sampling_rounds_factor=0.01)


def random_incidences(seed, count, num_rows, domain, deltas=(-2, -1, 1, 3)):
    rng = rng_from_seed(seed, "columnar-test")
    rows = np.array([rng.randrange(num_rows) for _ in range(count)], dtype=np.int64)
    idxs = np.array([rng.randrange(domain) for _ in range(count)], dtype=np.int64)
    ds = np.array([rng.choice(deltas) for _ in range(count)], dtype=np.int64)
    return rows, idxs, ds


class TestSketchStack:
    def test_shared_seed_scatter_matches_scalar_sketches(self):
        num_rows, domain = 6, 300
        stack = SketchStack(num_rows, domain, 4, "stack-shared", rows=3)
        references = [
            SparseRecoverySketch(domain, 4, "stack-shared", rows=3)
            for _ in range(num_rows)
        ]
        rows, idxs, ds = random_incidences("shared", 4000, num_rows, domain)
        stack.scatter(rows, idxs, ds)
        for row, index, delta in zip(rows, idxs, ds):
            references[row].update(int(index), int(delta))
        for row in range(num_rows):
            assert stack.row_state_ints(row) == references[row].state_ints()
            assert stack.row_sketch(row).decode() == references[row].decode()

    def test_update_row_matches_scatter(self):
        num_rows, domain = 4, 200
        scalar = SketchStack(num_rows, domain, 4, "paths", rows=3)
        batched = SketchStack(num_rows, domain, 4, "paths", rows=3)
        rows, idxs, ds = random_incidences("paths", 1500, num_rows, domain)
        batched.scatter(rows, idxs, ds)
        for row, index, delta in zip(rows, idxs, ds):
            scalar.update_row(int(row), int(index), int(delta))
        for row in range(num_rows):
            assert scalar.row_state_ints(row) == batched.row_state_ints(row)

    def test_per_row_seeds_match_scalar_sketches(self):
        num_rows, domain = 5, 250
        seeds = [("root", r) for r in range(num_rows)]
        stack = SketchStack(num_rows, domain, 6, [str(s) for s in seeds], rows=3)
        references = [
            SparseRecoverySketch(domain, 6, str(seeds[r]), rows=3)
            for r in range(num_rows)
        ]
        rows, idxs, ds = random_incidences("multi", 3000, num_rows, domain)
        stack.scatter(rows, idxs, ds)
        for row, index, delta in zip(rows, idxs, ds):
            references[row].update(int(index), int(delta))
        for row in range(num_rows):
            assert stack.row_state_ints(row) == references[row].state_ints()

    def test_rows_sum_equals_pairwise_combine(self):
        num_rows, domain = 5, 150
        stack = SketchStack(num_rows, domain, 4, "sum", rows=3)
        rows, idxs, ds = random_incidences("sum", 2000, num_rows, domain)
        stack.scatter(rows, idxs, ds)
        combined = stack.row_sketch(1)
        combined.combine(stack.row_sketch(3))
        combined.combine(stack.row_sketch(4))
        assert stack.rows_sum_sketch([1, 3, 4]).state_ints() == combined.state_ints()

    def test_clone_is_isolated(self):
        stack = SketchStack(3, 100, 4, "clone", rows=3)
        stack.update_row(0, 7, 1)
        clone = stack.clone()
        stack.update_row(0, 8, 1)
        clone.update_row(1, 9, -1)
        assert stack.row_state_ints(1) != clone.row_state_ints(1)
        fresh = SketchStack(3, 100, 4, "clone", rows=3)
        fresh.update_row(0, 7, 1)
        fresh.update_row(1, 9, -1)
        assert clone.row_state_ints(0) == fresh.row_state_ints(0)
        assert clone.row_state_ints(1) == fresh.row_state_ints(1)

    def test_combine_with_sign_cancels(self):
        stack = SketchStack(3, 100, 4, "cancel", rows=3)
        rows, idxs, ds = random_incidences("cancel", 500, 3, 100)
        stack.scatter(rows, idxs, ds)
        clone = stack.clone()
        clone.combine(stack, sign=-1)
        for row in range(3):
            assert clone.is_row_zero(row)

    def test_huge_delta_batch_spills_instead_of_wrapping(self):
        """A batch whose |delta| sum overflows int64 must take the exact
        spill path, never corrupt cells via wrapped admission math."""
        stack = SketchStack(2, 50, 4, "huge-delta", rows=3)
        references = [
            SparseRecoverySketch(50, 4, "huge-delta", rows=3) for _ in range(2)
        ]
        rows = np.array([0, 0, 1], dtype=np.int64)
        idxs = np.array([2, 3, 2], dtype=np.int64)
        ds = np.array([1 << 62, 1 << 62, -(1 << 62)], dtype=np.int64)
        stack.scatter(rows, idxs, ds)
        for row, index, delta in zip(rows, idxs, ds):
            references[row].update(int(index), int(delta))
        assert stack.is_spilled()
        for row in range(2):
            assert stack.row_state_ints(row) == references[row].state_ints()

    def test_load_row_state_round_trip(self):
        stack = SketchStack(3, 100, 4, "load", rows=3)
        rows, idxs, ds = random_incidences("load", 700, 3, 100)
        stack.scatter(rows, idxs, ds)
        other = SketchStack(3, 100, 4, "load", rows=3)
        for row in range(3):
            other.load_row_state(row, stack.row_state_ints(row))
            assert other.row_state_ints(row) == stack.row_state_ints(row)

    def test_spill_preserves_state_and_interop(self, monkeypatch):
        """Past the int64-safety bound the stack falls back to exact
        per-row sketches; every contract keeps working unchanged.

        The bound is tightened to actual cell magnitudes before
        spilling, so forcing the fallback needs deltas that genuinely
        accumulate past the (patched-down) guard — not just a long
        stream of small updates.
        """
        monkeypatch.setattr(columnar_module, "_INT64_SAFE_BOUND", 3_000)
        num_rows, domain = 3, 60
        stack = SketchStack(num_rows, domain, 4, "spill", rows=3)
        references = [
            SparseRecoverySketch(domain, 4, "spill", rows=3) for _ in range(num_rows)
        ]
        rng = rng_from_seed("spill-ops", 0)
        for step in range(400):
            row, index = rng.randrange(num_rows), rng.randrange(domain)
            delta = rng.choice([-40, 40])
            stack.update_row(row, index, delta)
            references[row].update(index, delta)
        assert stack.is_spilled()
        for row in range(num_rows):
            assert stack.row_state_ints(row) == references[row].state_ints()
        rows, idxs, ds = random_incidences("spill-batch", 300, num_rows, domain)
        stack.scatter(rows, idxs, ds)
        for row, index, delta in zip(rows, idxs, ds):
            references[row].update(int(index), int(delta))
        for row in range(num_rows):
            assert stack.row_state_ints(row) == references[row].state_ints()
        # combine columnar into spilled, clone, and sum rows
        fresh = SketchStack(num_rows, domain, 4, "spill", rows=3)
        fresh.update_row(2, 5, 7)
        stack.combine(fresh)
        references[2].update(5, 7)
        clone = stack.clone()
        for row in range(num_rows):
            assert clone.row_state_ints(row) == references[row].state_ints()
        summed = references[0].copy()
        summed.combine(references[1])
        assert stack.rows_sum_sketch([0, 1]).state_ints() == summed.state_ints()


class TestL0SamplerStack:
    def test_matches_scalar_samplers_and_sum(self):
        num_rows, domain = 5, 400
        stack = L0SamplerStack(num_rows, domain, "l0-stack")
        references = [L0Sampler(domain, "l0-stack") for _ in range(num_rows)]
        rows, idxs, ds = random_incidences("l0", 4000, num_rows, domain)
        stack.scatter(rows, idxs, ds)
        for row, index, delta in zip(rows, idxs, ds):
            references[row].update(int(index), int(delta))
        for row in range(num_rows):
            assert stack.row_state_ints(row) == references[row].state_ints()
            assert stack.row_sampler(row).sample() == references[row].sample()
        combined = references[0].copy()
        combined.combine(references[2])
        assert stack.rows_sum_sampler([0, 2]).state_ints() == combined.state_ints()

    def test_scalar_path_and_clone(self):
        stack = L0SamplerStack(3, 128, "l0-scalar")
        reference = L0Sampler(128, "l0-scalar")
        for index, delta in [(5, 1), (17, -2), (5, 1), (99, 4)]:
            stack.update_row(1, index, delta)
            reference.update(index, delta)
        clone = stack.clone()
        stack.update_row(1, 64, 1)
        assert clone.row_state_ints(1) == reference.state_ints()
        assert stack.row_state_ints(1) != reference.state_ints()


class TestBatchingHelpers:
    def test_updates_to_arrays(self):
        stream = mixed_workload_stream(8, 200, "arrays")
        updates = list(stream)
        us, vs, signs = updates_to_arrays(updates)
        assert us.tolist() == [u.u for u in updates]
        assert vs.tolist() == [u.v for u in updates]
        assert signs.tolist() == [u.sign for u in updates]

    def test_aggregate_cancellation(self):
        us = np.array([0, 0, 1, 0], dtype=np.int64)
        vs = np.array([1, 1, 2, 2], dtype=np.int64)
        ds = np.array([1, -1, 1, 1], dtype=np.int64)
        lows, highs, pairs, net = aggregate_updates(us, vs, ds, 4)
        assert list(zip(lows.tolist(), highs.tolist(), net.tolist())) == [
            (0, 2, 1),
            (1, 2, 1),
        ]
        lows, highs, pairs, net = aggregate_updates(us, vs, ds, 4, keep_zero=True)
        assert list(zip(lows.tolist(), highs.tolist(), net.tolist())) == [
            (0, 1, 0),
            (0, 2, 1),
            (1, 2, 1),
        ]
        assert pairs.tolist() == [1, 2, 6]


def _shard_states(algorithm, pass_index=0):
    return list(algorithm.shard_state_ints(pass_index))


class TestAgmColumnarIdentity:
    def test_batched_equals_scalar_equals_standalone(self):
        n, length = 24, 3000
        stream = mixed_workload_stream(n, length, "agm-identity")
        scalar = ConnectivityChecker(n, "agm-id")
        batched = ConnectivityChecker(n, "agm-id")
        for update in stream:
            scalar.process(update, 0)
        for chunk in stream.iter_batches(512):
            batched.process_batch(chunk, 0)
        assert _shard_states(scalar) == _shard_states(batched)
        assert scalar.finalize() == batched.finalize()

    def test_sketch_rows_equal_standalone_samplers(self):
        """The true cross-engine probe: columnar rows decode through (and
        equal) freshly built standalone per-vertex samplers."""
        n = 10
        sketch = AgmSketch(n, seed="standalone", rounds=3)
        stream = mixed_workload_stream(n, 600, "agm-standalone")
        us, vs, signs = updates_to_arrays(list(stream))
        sketch.update_batch(us, vs, signs)
        from repro.util.rng import derive_seed

        domain = n * n
        for r in range(3):
            seed = derive_seed(sketch._seed_key, "round", r)
            references = [L0Sampler(domain, seed) for _ in range(n)]
            for update, sign in zip(stream, signs):
                low, high = update.u, update.v
                coordinate = low * n + high
                references[low].update(coordinate, int(sign))
                references[high].update(coordinate, -int(sign))
            for vertex in range(n):
                assert (
                    sketch.sampler_view(vertex, r).state_ints()
                    == references[vertex].state_ints()
                )


class TestSpannerColumnarIdentity:
    def test_both_passes_bit_identical(self):
        n, length = 24, 3000
        stream = mixed_workload_stream(n, length, "spanner-identity")
        scalar = TwoPassSpannerBuilder(n, 2, "spanner-id")
        batched = TwoPassSpannerBuilder(n, 2, "spanner-id")
        for pass_index in range(2):
            for update in stream:
                scalar.process(update, pass_index)
            scalar.end_pass(pass_index)
        for pass_index in range(2):
            for chunk in stream.iter_batches(512):
                batched.process_batch(chunk, pass_index)
            batched.end_pass(pass_index)
        assert _shard_states(scalar, 0) == _shard_states(batched, 0)
        assert _shard_states(scalar, 1) == _shard_states(batched, 1)
        assert (
            scalar.finalize().spanner.edge_set()
            == batched.finalize().spanner.edge_set()
        )

    def test_merge_shard_round_trip(self):
        """Shard the stream, serialize/load/merge — the reassembled state
        equals the single-instance state, across the columnar storage."""
        n, length, shards = 16, 2000, 3
        stream = mixed_workload_stream(n, length, "spanner-shards")
        updates = list(stream)
        single = TwoPassSpannerBuilder(n, 2, "shard-id")
        for chunk in stream.iter_batches(256):
            single.process_batch(chunk, 0)
        coordinator = TwoPassSpannerBuilder(n, 2, "shard-id")
        for shard in range(shards):
            worker = TwoPassSpannerBuilder(n, 2, "shard-id")
            worker.process_batch(updates[shard::shards], 0)
            shipped = worker.shard_state_ints(0)
            rebuilt = TwoPassSpannerBuilder(n, 2, "shard-id")
            rebuilt.load_shard_state_ints(0, shipped)
            assert rebuilt.shard_state_ints(0) == shipped
            coordinator.merge_shard(rebuilt, 0)
        assert coordinator.shard_state_ints(0) == single.shard_state_ints(0)

    def test_clone_isolation_mid_pass(self):
        n = 12
        stream = mixed_workload_stream(n, 800, "spanner-clone")
        builder = TwoPassSpannerBuilder(n, 2, "clone-id")
        updates = list(stream)
        builder.process_batch(updates[:400], 0)
        clone = builder.clone()
        builder.process_batch(updates[400:], 0)
        reference = TwoPassSpannerBuilder(n, 2, "clone-id")
        reference.process_batch(updates[:400], 0)
        assert clone.shard_state_ints(0) == reference.shard_state_ints(0)


class TestSparsifierColumnarIdentity:
    def test_unweighted_bit_identical(self):
        n, length = 16, 2000
        stream = mixed_workload_stream(n, length, "sparsify-identity")
        scalar = StreamingSparsifier(n, "sparsify-id", k=1, params=SLIM)
        batched = StreamingSparsifier(n, "sparsify-id", k=1, params=SLIM)
        for pass_index in range(2):
            for update in stream:
                scalar.process(update, pass_index)
            scalar.end_pass(pass_index)
            for chunk in stream.iter_batches(512):
                batched.process_batch(chunk, pass_index)
            batched.end_pass(pass_index)
        assert _shard_states(scalar, 0) == _shard_states(batched, 0)
        assert _shard_states(scalar, 1) == _shard_states(batched, 1)
        assert scalar.finalize().edge_set() == batched.finalize().edge_set()

    def test_weighted_bit_identical(self):
        n, length = 12, 1200
        stream = mixed_workload_stream(
            n, length, "sparsify-weighted", weights=(1.0, 8.0)
        )
        scalar = StreamingWeightedSparsifier(
            n, "weighted-id", 1.0, 8.0, k=1, params=SLIM
        )
        batched = StreamingWeightedSparsifier(
            n, "weighted-id", 1.0, 8.0, k=1, params=SLIM
        )
        for pass_index in range(2):
            for update in stream:
                scalar.process(update, pass_index)
            scalar.end_pass(pass_index)
            for chunk in stream.iter_batches(256):
                batched.process_batch(chunk, pass_index)
            batched.end_pass(pass_index)
        assert _shard_states(scalar, 0) == _shard_states(batched, 0)
        assert _shard_states(scalar, 1) == _shard_states(batched, 1)


class TestServiceColumnarDurability:
    @pytest.mark.parametrize("weighted", [False, True])
    def test_checkpoint_restore_through_columnar_state(self, tmp_path, weighted):
        """Kill/restore mid-stream lands bit-identical to no crash, with
        all three algorithms' state in columnar storage."""
        n, length = 12, 1500
        bounds = (1.0, 4.0) if weighted else None
        tokens = list(
            mixed_workload_stream(
                n, length, "service-columnar", weights=bounds
            )
        )
        session = GraphSession(
            n, "service-columnar", k=2, sparsifier_k=1,
            sparsifier_params=SLIM, weight_bounds=bounds,
        )
        midpoint = length // 2
        session.ingest_batch(tokens[:midpoint])
        path = tmp_path / "mid.bin"
        session.checkpoint(path)
        session.ingest_batch(tokens[midpoint:])
        reference = session.snapshot_answers()
        reference_states = [list(a.shard_state_ints(0)) for a in session._algorithms()]

        restored = load_session(path)
        restored.ingest_batch(tokens[midpoint:])
        assert restored.snapshot_answers() == reference
        assert [
            list(a.shard_state_ints(0)) for a in restored._algorithms()
        ] == reference_states
