"""Tests for the 1-sparse detector."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sketch.onesparse import DecodeStatus, OneSparseDetector


def make(seed=1, domain=1000):
    return OneSparseDetector(domain, seed)


class TestDecodeStatuses:
    def test_fresh_detector_is_zero(self):
        assert make().decode().status is DecodeStatus.ZERO

    def test_single_coordinate_recovered(self):
        detector = make()
        detector.update(17, 5)
        result = detector.decode()
        assert result.status is DecodeStatus.ONE_SPARSE
        assert result.index == 17
        assert result.value == 5

    def test_negative_value_recovered(self):
        detector = make()
        detector.update(3, -4)
        result = detector.decode()
        assert result.status is DecodeStatus.ONE_SPARSE
        assert result.index == 3
        assert result.value == -4

    def test_insert_then_delete_returns_to_zero(self):
        detector = make()
        detector.update(42, 7)
        detector.update(42, -7)
        assert detector.decode().status is DecodeStatus.ZERO

    def test_two_coordinates_rejected(self):
        detector = make()
        detector.update(1, 1)
        detector.update(2, 1)
        assert detector.decode().status is DecodeStatus.NOT_ONE_SPARSE

    def test_cancellation_across_indices_rejected(self):
        # total == 0 but the vector is (1, -1): must not look zero.
        detector = make()
        detector.update(5, 1)
        detector.update(9, -1)
        assert detector.decode().status is DecodeStatus.NOT_ONE_SPARSE

    def test_index_zero_value_recovered(self):
        detector = make()
        detector.update(0, 3)
        result = detector.decode()
        assert result.status is DecodeStatus.ONE_SPARSE
        assert result.index == 0
        assert result.value == 3

    def test_many_coordinates_rejected(self):
        detector = make()
        for index in range(50):
            detector.update(index, index + 1)
        assert detector.decode().status is DecodeStatus.NOT_ONE_SPARSE


class TestLinearity:
    def test_combine_adds(self):
        left = make(seed=2)
        right = make(seed=2)
        left.update(10, 4)
        right.update(10, 6)
        left.combine(right)
        result = left.decode()
        assert result.status is DecodeStatus.ONE_SPARSE
        assert result.value == 10

    def test_combine_subtracts_to_isolate(self):
        full = make(seed=3)
        noise = make(seed=3)
        full.update(1, 2)
        full.update(7, 9)
        noise.update(1, 2)
        full.combine(noise, sign=-1)
        result = full.decode()
        assert result.status is DecodeStatus.ONE_SPARSE
        assert result.index == 7
        assert result.value == 9

    def test_combine_requires_same_seed(self):
        left = make(seed=4)
        right = make(seed=5)
        with pytest.raises(ValueError):
            left.combine(right)

    def test_combine_requires_valid_sign(self):
        left = make(seed=6)
        right = make(seed=6)
        with pytest.raises(ValueError):
            left.combine(right, sign=2)


class TestStateRoundTrip:
    def test_state_vector_round_trip(self):
        detector = make(seed=7)
        detector.update(33, 12)
        clone = make(seed=7)
        clone.load_state_vector(detector.state_vector())
        result = clone.decode()
        assert result.status is DecodeStatus.ONE_SPARSE
        assert result.index == 33
        assert result.value == 12

    def test_copy_is_independent(self):
        detector = make(seed=8)
        detector.update(2, 1)
        clone = detector.copy()
        clone.update(3, 1)
        assert detector.decode().status is DecodeStatus.ONE_SPARSE
        assert clone.decode().status is DecodeStatus.NOT_ONE_SPARSE


class TestValidation:
    def test_out_of_range_index_rejected(self):
        detector = make(domain=10)
        with pytest.raises(IndexError):
            detector.update(10, 1)

    def test_nonpositive_domain_rejected(self):
        with pytest.raises(ValueError):
            OneSparseDetector(0, seed=1)

    def test_zero_delta_is_noop(self):
        detector = make()
        detector.update(5, 0)
        assert detector.decode().status is DecodeStatus.ZERO


@settings(max_examples=200, deadline=None)
@given(
    updates=st.lists(
        st.tuples(st.integers(min_value=0, max_value=199), st.integers(min_value=-50, max_value=50)),
        max_size=30,
    )
)
def test_detector_matches_reference_vector(updates):
    """Property: the decode status always matches the true net vector."""
    detector = OneSparseDetector(200, seed=99)
    reference: dict[int, int] = {}
    for index, delta in updates:
        detector.update(index, delta)
        reference[index] = reference.get(index, 0) + delta
    support = {i for i, v in reference.items() if v != 0}
    result = detector.decode()
    if len(support) == 0:
        assert result.status is DecodeStatus.ZERO
    elif len(support) == 1:
        index = next(iter(support))
        assert result.status is DecodeStatus.ONE_SPARSE
        assert result.index == index
        assert result.value == reference[index]
    else:
        assert result.status is DecodeStatus.NOT_ONE_SPARSE
