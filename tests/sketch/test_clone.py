"""The ``clone()`` contract audit (see :mod:`repro.sketch`).

Every sketch class and every StreamingAlgorithm must produce clones
whose dynamic state is independent (mutating either side never leaks
into the other) while the immutable seed-derived randomness stays
shared.  The live service's snapshot queries stand on this contract.
"""

import copy

import pytest

from repro.agm.connectivity import (
    BipartitenessChecker,
    ConnectivityChecker,
    KConnectivityCertificate,
)
from repro.agm.spanning_forest import AgmSketch
from repro.core import SparsifierParams, TwoPassSpannerBuilder
from repro.core.sparsify import StreamingSparsifier, StreamingWeightedSparsifier
from repro.sketch import (
    CountSketch,
    DistinctElementsSketch,
    KWiseHash,
    L0Sampler,
    LinearHashTable,
    NeighborhoodHashTable,
    NestedSampler,
    OneSparseDetector,
    SparseRecoverySketch,
)
from repro.stream.updates import EdgeUpdate

SLIM = SparsifierParams(estimate_levels=2, sampling_levels=2, sampling_rounds_factor=0.01)

#: (constructor, mutator) for every sketch class in the repository.
SKETCHES = [
    (lambda: OneSparseDetector(500, "clone"), lambda s: s.update(7, 1)),
    (lambda: SparseRecoverySketch(500, 4, "clone"), lambda s: s.update(7, 1)),
    (lambda: L0Sampler(500, "clone"), lambda s: s.update(7, 1)),
    (lambda: CountSketch(500, 4, "clone"), lambda s: s.update(7, 1)),
    (lambda: DistinctElementsSketch(500, "clone", reps=4), lambda s: s.update(7, 1)),
    (lambda: LinearHashTable(100, 3, 4, "clone"),
     lambda s: s.add_payload(7, [1, 2, 3])),
    (lambda: NeighborhoodHashTable(100, 4, "clone"),
     lambda s: s.add_neighbor(7, 9, 1)),
    (lambda: AgmSketch(12, "clone"), lambda s: s.update(1, 2, 1)),
]

SKETCH_IDS = [factory().__class__.__name__ for factory, _ in SKETCHES]


@pytest.mark.parametrize("factory,mutate", SKETCHES, ids=SKETCH_IDS)
class TestSketchClones:
    def test_clone_state_is_independent(self, factory, mutate):
        original = factory()
        mutate(original)
        clone = original.clone()
        assert clone.state_ints() == original.state_ints()
        mutate(original)
        assert clone.state_ints() != original.state_ints()
        mutate(clone)
        assert clone.state_ints() == original.state_ints()

    def test_clone_is_same_type_and_summable(self, factory, mutate):
        original = factory()
        mutate(original)
        clone = original.clone()
        assert type(clone) is type(original)
        # Same seed-derived randomness: clones must remain combinable.
        clone.combine(original, sign=-1)
        assert all(value == 0 for value in clone.state_ints())


class TestSharedRandomnessSurvivesCopy:
    def test_hash_families_deepcopy_as_themselves(self):
        shared = KWiseHash.shared(4, "deepcopy")
        assert copy.deepcopy(shared) is shared
        assert copy.copy(shared) is shared
        sampler = NestedSampler(8, "deepcopy")
        assert copy.deepcopy(sampler) is sampler

    def test_sparse_recovery_clone_shares_row_hashes(self):
        sketch = SparseRecoverySketch(500, 4, "share")
        clone = sketch.clone()
        assert clone._row_hashes is sketch._row_hashes

    def test_deepcopy_of_sketch_keeps_interned_hashes(self):
        sketch = SparseRecoverySketch(500, 4, "share-deep")
        duplicate = copy.deepcopy(sketch)
        assert duplicate._row_hashes[0] is sketch._row_hashes[0]


def feed(algorithm, updates, pass_index=0):
    algorithm.begin_pass(pass_index)
    for update in updates:
        algorithm.process(update, pass_index)


UPDATES = [
    EdgeUpdate(0, 1, +1),
    EdgeUpdate(1, 2, +1),
    EdgeUpdate(2, 3, +1),
    EdgeUpdate(3, 4, +1),
    EdgeUpdate(4, 5, +1),
]

ALGORITHMS = [
    lambda: ConnectivityChecker(8, "algo"),
    lambda: BipartitenessChecker(8, "algo"),
    lambda: KConnectivityCertificate(8, 2, "algo"),
    lambda: TwoPassSpannerBuilder(8, 2, "algo"),
    # k=2 so the sub-spanners hold pass-0 cluster sketches (at k=1 the
    # level hierarchy is trivial and pass 0 is legitimately stateless).
    lambda: StreamingSparsifier(8, "algo", k=2, params=SLIM),
    lambda: StreamingWeightedSparsifier(8, "algo", 1.0, 4.0, k=2, params=SLIM),
]

ALGORITHM_IDS = [factory().__class__.__name__ for factory in ALGORITHMS]


@pytest.mark.parametrize("factory", ALGORITHMS, ids=ALGORITHM_IDS)
def test_algorithm_clone_pass0_state_is_independent(factory):
    original = factory()
    feed(original, UPDATES[:3])
    clone = original.clone()
    snapshot = clone.shard_state_ints(0)
    assert snapshot == original.shard_state_ints(0)
    for update in UPDATES[3:]:
        original.process(update, 0)
    assert clone.shard_state_ints(0) == snapshot
    assert original.shard_state_ints(0) != snapshot


def test_sparsifier_clone_finalize_does_not_pollute_live_core():
    """A snapshot clone attaches oracles and sampler outputs to *its*
    core; the live pipeline must stay pristine for future epochs."""
    live = StreamingSparsifier(8, "pollute", k=1, params=SLIM)
    feed(live, UPDATES[:4])
    clone = live.clone()
    clone.end_pass(0)
    clone.begin_pass(1)
    for update in UPDATES[:4]:
        clone.process(update, 1)
    clone.end_pass(1)
    clone.finalize()
    assert live.core.estimator.oracles_missing() > 0
    assert not live.core.estimator._bfs_cache
    assert all(not sampler._outputs for sampler in live.core.samplers)


def test_base_streaming_algorithm_clone_is_deepcopy():
    from repro.core import AdditiveSpannerBuilder

    builder = AdditiveSpannerBuilder(8, 2, seed="deep")
    feed(builder, UPDATES[:3])
    clone = builder.clone()
    for update in UPDATES[3:]:
        builder.process(update, 0)
    # Clone kept the pre-mutation state: finalizing both yields spanners
    # over different edge sets only because of the extra updates.
    assert type(clone) is AdditiveSpannerBuilder
