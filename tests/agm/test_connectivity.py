"""Tests for one-pass connectivity applications of AGM sketches."""

import pytest

from repro.agm.connectivity import (
    BipartitenessChecker,
    ConnectivityChecker,
    KConnectivityCertificate,
)
from repro.graph.cuts import cut_value
from repro.graph.graph import Graph
from repro.graph.random_graphs import (
    complete_graph,
    connected_gnp,
    cycle_graph,
    grid_graph,
    path_graph,
)
from repro.stream.generators import stream_from_graph


def stream_of(graph, seed=1, churn=0.3):
    return stream_from_graph(graph, seed=seed, churn=churn)


class TestConnectivityChecker:
    def test_connected_graph(self):
        graph = connected_gnp(30, 0.15, seed=1)
        checker = ConnectivityChecker(30, seed=2)
        components = checker.run(stream_of(graph))
        assert len(components) == 1

    def test_components_match(self):
        graph = Graph.from_edges(9, [(0, 1), (1, 2), (3, 4), (5, 6), (6, 7), (7, 8)])
        checker = ConnectivityChecker(9, seed=3)
        components = checker.run(stream_of(graph, churn=0.0))
        assert sorted(map(sorted, components)) == [[0, 1, 2], [3, 4], [5, 6, 7, 8]]

    def test_deletion_splits_components(self):
        # Build a path, then delete the middle edge via churn-free stream.
        stream = stream_of(path_graph(6), churn=0.0)
        stream.delete(2, 3)
        checker = ConnectivityChecker(6, seed=4)
        components = checker.run(stream)
        assert sorted(map(sorted, components)) == [[0, 1, 2], [3, 4, 5]]

    def test_single_pass(self):
        assert ConnectivityChecker(4, seed=1).passes_required == 1

    def test_space_words_positive(self):
        assert ConnectivityChecker(4, seed=1).space_words() > 0


class TestBipartitenessChecker:
    def test_even_cycle_bipartite(self):
        checker = BipartitenessChecker(8, seed=5)
        assert checker.run(stream_of(cycle_graph(8), churn=0.0)) is True

    def test_odd_cycle_not_bipartite(self):
        checker = BipartitenessChecker(9, seed=6)
        assert checker.run(stream_of(cycle_graph(9), churn=0.0)) is False

    def test_grid_bipartite(self):
        checker = BipartitenessChecker(20, seed=7)
        assert checker.run(stream_of(grid_graph(4, 5), churn=0.0)) is True

    def test_triangle_plus_isolated_not_bipartite(self):
        graph = Graph.from_edges(5, [(0, 1), (1, 2), (0, 2)])
        checker = BipartitenessChecker(5, seed=8)
        assert checker.run(stream_of(graph, churn=0.0)) is False

    def test_deletion_restores_bipartiteness(self):
        # A 5-cycle is odd; deleting one edge leaves a path (bipartite).
        stream = stream_of(cycle_graph(5), churn=0.0)
        stream.delete(0, 4)
        checker = BipartitenessChecker(5, seed=9)
        assert checker.run(stream) is True

    def test_empty_graph_bipartite(self):
        checker = BipartitenessChecker(4, seed=10)
        assert checker.run(stream_of(Graph(4), churn=0.0)) is True

    def test_mixed_components(self):
        # One bipartite component + one odd cycle: not bipartite.
        graph = Graph.from_edges(7, [(0, 1), (2, 3), (3, 4), (4, 2)])
        checker = BipartitenessChecker(7, seed=11)
        assert checker.run(stream_of(graph, churn=0.0)) is False


class TestKConnectivityCertificate:
    def test_certificate_is_subgraph(self):
        graph = connected_gnp(20, 0.3, seed=12)
        certifier = KConnectivityCertificate(20, k=3, seed=13)
        certificate = certifier.run(stream_of(graph))
        for u, v, _ in certificate.edges():
            assert graph.has_edge(u, v)

    def test_certificate_size_bound(self):
        graph = complete_graph(16)
        certifier = KConnectivityCertificate(16, k=3, seed=14)
        certificate = certifier.run(stream_of(graph, churn=0.0))
        assert certificate.num_edges() <= 3 * 15

    def test_preserves_connectivity(self):
        graph = connected_gnp(24, 0.2, seed=15)
        certifier = KConnectivityCertificate(24, k=2, seed=16)
        certificate = certifier.run(stream_of(graph))
        assert certificate.is_connected()

    def test_small_cuts_preserved(self):
        """Cuts of value < k must be preserved exactly."""
        # Two K_6 blocks joined by exactly 2 edges: a cut of value 2.
        graph = Graph(12)
        for base in (0, 6):
            for i in range(6):
                for j in range(i + 1, 6):
                    graph.add_edge(base + i, base + j)
        graph.add_edge(0, 6)
        graph.add_edge(3, 9)
        certifier = KConnectivityCertificate(12, k=3, seed=17)
        certificate = certifier.run(stream_of(graph, churn=0.0))
        side = set(range(6))
        assert cut_value(certificate, side) == cut_value(graph, side) == 2.0

    def test_k1_is_spanning_forest(self):
        graph = connected_gnp(18, 0.25, seed=18)
        certifier = KConnectivityCertificate(18, k=1, seed=19)
        certificate = certifier.run(stream_of(graph))
        assert certificate.num_edges() == 17
        assert certificate.is_connected()

    def test_forests_are_edge_disjoint_by_construction(self):
        # With k=2 on a tree, the second forest finds nothing new.
        graph = path_graph(10)
        certifier = KConnectivityCertificate(10, k=2, seed=20)
        certificate = certifier.run(stream_of(graph, churn=0.0))
        assert certificate.num_edges() == 9

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            KConnectivityCertificate(8, k=0, seed=1)
