"""Tests for AGM spanning-forest sketches."""

import pytest

from repro.agm.incidence import decode_edge, incidence_updates
from repro.agm.spanning_forest import AgmSketch, DisjointSets
from repro.graph.graph import Graph
from repro.graph.random_graphs import connected_gnp, cycle_graph, path_graph, random_gnp


def feed_graph(sketch: AgmSketch, graph: Graph) -> None:
    for u, v, _ in graph.edges():
        sketch.update(u, v, 1)


def forest_components(num_vertices, forest_edges, seeds=None):
    dsu = DisjointSets(num_vertices)
    for a, b in forest_edges:
        dsu.union(a, b)
    groups = {}
    for vertex in range(num_vertices):
        groups.setdefault(dsu.find(vertex), set()).add(vertex)
    return sorted(map(sorted, groups.values()))


class TestDisjointSets:
    def test_union_find(self):
        dsu = DisjointSets(5)
        assert dsu.union(0, 1)
        assert not dsu.union(1, 0)
        assert dsu.find(0) == dsu.find(1)
        assert dsu.num_sets() == 4

    def test_num_sets_all_singletons(self):
        assert DisjointSets(7).num_sets() == 7


class TestIncidence:
    def test_updates_signed(self):
        updates = incidence_updates(3, 1, 2, num_vertices=10)
        assert len(updates) == 2
        (low_vertex, coord1, d1), (high_vertex, coord2, d2) = updates
        assert low_vertex == 1 and d1 == 2
        assert high_vertex == 3 and d2 == -2
        assert coord1 == coord2
        assert decode_edge(coord1, 10) == (1, 3)

    def test_component_sum_cancels_internal_edges(self):
        """Summing samplers over a component leaves only outgoing edges."""
        sketch = AgmSketch(4, seed=1, rounds=2)
        sketch.update(0, 1, 1)  # internal to {0,1}
        sketch.update(1, 2, 1)  # leaves {0,1}
        combined = sketch.sampler_view(0, 0)
        combined.combine(sketch.sampler_view(1, 0))
        sampled = combined.sample()
        assert sampled is not None
        assert decode_edge(sampled[0], 4) == (1, 2)


class TestSpanningForest:
    def test_empty_graph(self):
        sketch = AgmSketch(5, seed=2)
        assert sketch.spanning_forest() == []

    def test_single_edge(self):
        sketch = AgmSketch(4, seed=3)
        sketch.update(1, 3, 1)
        assert sketch.spanning_forest() == [(1, 3)]

    def test_path_graph_fully_connected(self):
        graph = path_graph(12)
        sketch = AgmSketch(12, seed=4)
        feed_graph(sketch, graph)
        forest = sketch.spanning_forest()
        assert len(forest) == 11
        assert forest_components(12, forest) == [list(range(12))]

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_random_connected_graph(self, seed):
        graph = connected_gnp(32, 0.1, seed=seed)
        sketch = AgmSketch(32, seed=100 + seed)
        feed_graph(sketch, graph)
        forest = sketch.spanning_forest()
        assert len(forest) == 31
        for a, b in forest:
            assert graph.has_edge(a, b)

    def test_components_match_graph(self):
        graph = Graph.from_edges(9, [(0, 1), (1, 2), (3, 4), (5, 6), (6, 7), (7, 8)])
        sketch = AgmSketch(9, seed=5)
        feed_graph(sketch, graph)
        components = sorted(map(sorted, sketch.connected_components()))
        assert components == [[0, 1, 2], [3, 4], [5, 6, 7, 8]]

    def test_deletions_respected(self):
        sketch = AgmSketch(6, seed=6)
        graph = cycle_graph(6)
        feed_graph(sketch, graph)
        # Delete two adjacent cycle edges: vertex between them isolates.
        sketch.update(0, 1, -1)
        sketch.update(1, 2, -1)
        components = sorted(map(sorted, sketch.connected_components()))
        assert components == [[0, 2, 3, 4, 5], [1]]

    def test_forest_edges_exist_after_churn(self):
        graph = connected_gnp(24, 0.12, seed=7)
        sketch = AgmSketch(24, seed=8)
        feed_graph(sketch, graph)
        # Insert then delete a batch of decoys.
        decoys = [(0, 23), (1, 22), (2, 21), (3, 20)]
        decoys = [(u, v) for u, v in decoys if not graph.has_edge(u, v)]
        for u, v in decoys:
            sketch.update(u, v, 1)
        for u, v in decoys:
            sketch.update(u, v, -1)
        forest = sketch.spanning_forest()
        assert len(forest) == 23
        for a, b in forest:
            assert graph.has_edge(a, b)

    def test_multigraph_multiplicities(self):
        sketch = AgmSketch(3, seed=9)
        sketch.update(0, 1, 3)  # multiplicity 3
        sketch.update(1, 2, 1)
        forest = sketch.spanning_forest()
        assert forest_components(3, forest) == [[0, 1, 2]]


class TestSupernodes:
    def test_collapsed_groups_pre_merged(self):
        # No edges at all: vertices in the same group still form one
        # component.
        sketch = AgmSketch(6, seed=10)
        components = sorted(map(sorted, sketch.connected_components(supernodes=[0, 0, 1, 1, 2, 2])))
        assert components == [[0, 1], [2, 3], [4, 5]]

    def test_contracted_forest_uses_original_edges(self):
        # Two groups {0,1} and {2,3} joined by edge (1, 2).
        sketch = AgmSketch(4, seed=11)
        sketch.update(1, 2, 1)
        forest = sketch.spanning_forest(supernodes=[0, 0, 1, 1])
        assert forest == [(1, 2)]

    def test_internal_edges_not_sampled(self):
        sketch = AgmSketch(4, seed=12)
        sketch.update(0, 1, 1)  # internal to group 0
        sketch.update(2, 3, 1)  # internal to group 1
        forest = sketch.spanning_forest(supernodes=[0, 0, 1, 1])
        assert forest == []

    def test_supernode_length_validated(self):
        sketch = AgmSketch(4, seed=13)
        with pytest.raises(ValueError):
            sketch.spanning_forest(supernodes=[0, 0])


class TestLinearity:
    def test_combine_two_edge_sets(self):
        """Two servers each hold half the edges; merged sketches give a
        spanning forest of the union — the distributed use case."""
        graph = connected_gnp(20, 0.15, seed=14)
        edges = list(graph.edges())
        half = len(edges) // 2
        left = AgmSketch(20, seed=15)
        right = AgmSketch(20, seed=15)
        for u, v, _ in edges[:half]:
            left.update(u, v, 1)
        for u, v, _ in edges[half:]:
            right.update(u, v, 1)
        left.combine(right)
        forest = left.spanning_forest()
        assert len(forest) == 19

    def test_subtract_edges(self):
        graph = cycle_graph(8)
        sketch = AgmSketch(8, seed=16)
        feed_graph(sketch, graph)
        sketch.subtract_edges({(0, 1): 1, (4, 5): 1})
        components = sorted(map(sorted, sketch.connected_components()))
        assert components == [[0, 5, 6, 7], [1, 2, 3, 4]]

    def test_combine_rejects_different_seeds(self):
        with pytest.raises(ValueError):
            AgmSketch(4, seed=1).combine(AgmSketch(4, seed=2))


class TestReliability:
    def test_connectivity_success_rate(self):
        """Spanning forest must fully connect connected inputs in nearly
        all trials (Theorem 10 is a whp statement)."""
        failures = 0
        trials = 20
        for trial in range(trials):
            graph = connected_gnp(24, 0.12, seed=300 + trial)
            sketch = AgmSketch(24, seed=400 + trial)
            feed_graph(sketch, graph)
            if len(sketch.spanning_forest()) != 23:
                failures += 1
        assert failures <= 1

    def test_space_words_positive(self):
        assert AgmSketch(8, seed=17).space_words() > 0
