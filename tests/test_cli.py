"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["nonsense"])

    def test_spanner_defaults(self):
        args = build_parser().parse_args(["spanner"])
        assert args.n == 64
        assert args.k == 2


class TestCommands:
    def test_info(self, capsys):
        assert main(["info"]) == 0
        out = capsys.readouterr().out
        assert "PODC 2014" in out
        assert "Thm 1" in out

    def test_spanner_ok(self, capsys):
        code = main(["spanner", "--n", "40", "--k", "2", "--seed", "3"])
        out = capsys.readouterr().out
        assert code == 0
        assert "guarantee: OK" in out
        assert "2 passes" in out

    def test_additive_ok(self, capsys):
        code = main(["additive", "--n", "40", "--d", "2", "--seed", "3"])
        out = capsys.readouterr().out
        assert code == 0
        assert "guarantee: OK" in out
        assert "1 pass" in out

    def test_connectivity_ok(self, capsys):
        code = main(["connectivity", "--n", "32", "--seed", "3"])
        out = capsys.readouterr().out
        assert code == 0
        assert "verified  : OK" in out

    def test_sparsify_offline(self, capsys):
        code = main([
            "sparsify", "--n", "24", "--p", "0.35",
            "--rounds-factor", "0.05", "--seed", "3",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "spectral" in out
        assert "offline-oracle" in out

    def test_game(self, capsys):
        code = main([
            "game", "--blocks", "3", "--block-size", "8",
            "--budget", "8", "--trials", "4", "--seed", "3",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "INDEX length" in out
        assert "bytes" in out

    def test_workload_mixed(self, capsys):
        code = main([
            "workload", "--scenario", "mixed", "--n", "12",
            "--updates", "800", "--seed", "3",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "updates/s" in out
        assert "components OK" in out

    def test_workload_no_sparsifier_skips_cuts(self, capsys):
        code = main([
            "workload", "--scenario", "bursty-deletes", "--n", "12",
            "--updates", "800", "--seed", "3", "--no-sparsifier",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "skipped" in out

    def test_serve_recovers_bit_identically(self, capsys, tmp_path):
        code = main([
            "serve", "--n", "12", "--updates", "1200", "--seed", "3",
            "--checkpoint-every", "400", "--query-every", "300",
            "--no-sparsifier", "--state-dir", str(tmp_path),
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "bit-identical" in out
        assert list(tmp_path.glob("ckpt-*.bin"))
