"""The telemetry core: span nesting, aggregation, the disabled-path
contract, histograms, and the JSONL schema docs/observability.md pins.

The disabled path is the load-bearing half: every hot seam in the repo
calls ``obs.TRACER`` unconditionally, so these tests pin that with
``REPRO_TRACE`` unset the process-wide tracer is the allocation-free
noop singleton and nothing observable happens — the property that keeps
every bit-identity test and the ingest floor untouched by telemetry.
"""

import json

import pytest

from repro import obs


class FakeClock:
    """Deterministic injectable clock: advances by ``step`` per read."""

    def __init__(self, step: float = 1.0):
        self.now = 0.0
        self.step = step

    def __call__(self) -> float:
        value = self.now
        self.now += self.step
        return value


# -- the disabled path -------------------------------------------------


def test_trace_env_unset_leaves_noop_tracer(monkeypatch):
    monkeypatch.delenv("REPRO_TRACE", raising=False)
    # ENABLED was latched at import with the env unset (the test run
    # never sets it), and the process-wide tracer is the noop singleton.
    assert obs.ENABLED is False
    assert obs.TRACER is obs.NOOP_TRACER
    assert obs.get_tracer() is obs.NOOP_TRACER


def test_noop_span_is_one_shared_singleton():
    # The cost contract: span() on the disabled path allocates nothing —
    # every call returns the same object, usable as a context manager.
    a = obs.NOOP_TRACER.span("ingest", batch=128)
    b = obs.NOOP_TRACER.span("query")
    assert a is b is obs.NOOP_SPAN
    with a as entered:
        assert entered is obs.NOOP_SPAN
        entered.annotate(extra=1)
    assert a.elapsed == 0.0
    assert a.path == ()


def test_noop_tracer_records_nothing():
    obs.NOOP_TRACER.count("c", 5)
    obs.NOOP_TRACER.observe("h", 42)
    assert obs.NOOP_TRACER.phase_seconds() == {}
    assert obs.NOOP_TRACER.enabled is False
    obs.NOOP_TRACER.close()  # idempotent no-op


# -- enabled tracer: spans, nesting, aggregation -----------------------


def test_nested_spans_build_paths_and_phase_totals():
    tracer = obs.Tracer(clock=FakeClock())
    with tracer.span("outer"):
        with tracer.span("inner"):
            pass
        with tracer.span("inner"):
            pass
    phases = tracer.phase_seconds()
    assert set(phases) == {"outer", "outer/inner"}
    # FakeClock ticks once per read: each inner span spans one tick.
    assert phases["outer/inner"] == pytest.approx(2.0)
    assert tracer.phases[("outer", "inner")].count == 2
    assert tracer.phases[("outer",)].count == 1


def test_span_elapsed_readable_after_exit():
    tracer = obs.Tracer(clock=FakeClock(step=0.5))
    with tracer.span("work") as span:
        assert span.elapsed == 0.0
    assert span.elapsed == pytest.approx(0.5)
    assert span.path == ("work",)


def test_span_attrs_and_annotate():
    tracer = obs.Tracer(clock=FakeClock())
    with tracer.span("op", kind="connected") as span:
        span.annotate(cache_hit=True)
    assert span.attrs == {"kind": "connected", "cache_hit": True}


def test_sibling_spans_share_one_path():
    tracer = obs.Tracer(clock=FakeClock())
    for _ in range(3):
        with tracer.span("step"):
            pass
    assert tracer.phases[("step",)].count == 3


def test_exception_still_closes_span():
    tracer = obs.Tracer(clock=FakeClock())
    with pytest.raises(RuntimeError):
        with tracer.span("risky"):
            raise RuntimeError("boom")
    assert tracer.phases[("risky",)].count == 1
    assert tracer._stack == []


def test_set_tracer_swaps_and_restores():
    tracer = obs.Tracer(clock=FakeClock())
    previous = obs.set_tracer(tracer)
    try:
        assert obs.TRACER is tracer
        assert obs.get_tracer() is tracer
    finally:
        assert obs.set_tracer(previous) is tracer
    assert obs.TRACER is previous


# -- counters and histograms -------------------------------------------


def test_counters_accumulate():
    tracer = obs.Tracer(clock=FakeClock())
    tracer.count("hits")
    tracer.count("hits", 4)
    assert tracer.counters == {"hits": 5}


@pytest.mark.parametrize(
    "value,bucket",
    [(0, 0), (0.25, 1), (1, 1), (2, 2), (3, 2), (4, 3), (255, 8), (256, 9)],
)
def test_log2_bucket(value, bucket):
    assert obs.log2_bucket(value) == bucket


def test_log2_bucket_rejects_negative():
    with pytest.raises(ValueError):
        obs.log2_bucket(-1)


def test_histogram_aggregates():
    tracer = obs.Tracer(clock=FakeClock())
    for value in (0, 1, 1, 300):
        tracer.observe("sizes", value)
    histogram = tracer.histograms["sizes"]
    assert histogram.count == 4
    assert histogram.mean == pytest.approx(75.5)
    assert histogram.max_value == 300
    assert histogram.buckets == {0: 1, 1: 2, 9: 1}
    assert histogram.to_json() == {
        "count": 4,
        "total": 302.0,
        "max": 300,
        "buckets": {"0": 1, "1": 2, "9": 1},
    }


# -- the JSONL sink ----------------------------------------------------


def test_jsonl_schema(tmp_path):
    path = tmp_path / "trace.jsonl"
    tracer = obs.Tracer(clock=FakeClock(), sink=obs.JsonlSink(path))
    with tracer.span("run", scenario="mixed"):
        with tracer.span("ingest"):
            pass
    tracer.count("session.cache.hit", 2)
    tracer.observe("batch", 64)
    tracer.close()

    records = [json.loads(line) for line in path.read_text().splitlines()]
    spans = [r for r in records if r["type"] == "span"]
    counters = [r for r in records if r["type"] == "counter"]
    histograms = [r for r in records if r["type"] == "histogram"]
    # Spans stream as they CLOSE: inner before outer.
    assert [s["path"] for s in spans] == ["run/ingest", "run"]
    assert spans[0]["name"] == "ingest"
    assert spans[0]["seconds"] == pytest.approx(1.0)
    assert "attrs" not in spans[0]
    assert spans[1]["attrs"] == {"scenario": "mixed"}
    assert counters == [
        {"type": "counter", "name": "session.cache.hit", "value": 2}
    ]
    assert histograms[0]["name"] == "batch"
    assert histograms[0]["buckets"] == {"7": 1}


def test_jsonl_sink_lazy_open_and_idempotent_close(tmp_path):
    path = tmp_path / "never.jsonl"
    sink = obs.JsonlSink(path)
    sink.close()
    assert not path.exists()  # nothing written, nothing created
    sink.write({"type": "span"})
    sink.close()
    sink.close()
    assert path.exists()


def test_trace_path_from_env(monkeypatch):
    monkeypatch.delenv("REPRO_TRACE", raising=False)
    monkeypatch.delenv("REPRO_TRACE_FILE", raising=False)
    assert obs.trace_path_from_env() == "repro-trace.jsonl"
    monkeypatch.setenv("REPRO_TRACE", "1")
    monkeypatch.setenv("REPRO_TRACE_FILE", "custom.jsonl")
    assert obs.trace_path_from_env() == "custom.jsonl"
    monkeypatch.setenv("REPRO_TRACE", "out/run7.jsonl")
    assert obs.trace_path_from_env() == "out/run7.jsonl"


# -- rendering ---------------------------------------------------------


def test_render_summary_sections():
    tracer = obs.Tracer(clock=FakeClock())
    with tracer.span("run"):
        with tracer.span("ingest"):
            pass
    tracer.count("hits", 3)
    tracer.observe("batch", 8)
    text = obs.render_summary(tracer)
    assert "phase tree" in text
    assert "run" in text and "ingest" in text
    assert "hits" in text
    assert "batch" in text
