"""The instrumented seams, end to end: workload spans account for the
run's wall-clock, cache/checkpoint/decode traffic reaches the counters,
and the distributed runner's RoundTrace carries span-derived timing.

These tests install an enabled tracer via ``obs.set_tracer`` (restoring
the noop singleton afterwards) and drive the real subsystems — the same
wiring ``REPRO_TRACE=1`` arms in production.
"""

import pytest

from repro import obs
from repro.service import (
    GraphSession,
    WorkloadDriver,
    load_session,
    save_session,
    scenario_ops,
)
from repro.service.session import _EpochCache
from repro.stream import (
    EdgeUpdate,
    ShardedRunner,
    mixed_workload_stream,
    stream_from_graph,
)


@pytest.fixture
def tracer():
    """An enabled tracer installed process-wide for one test."""
    tracer = obs.Tracer()
    previous = obs.set_tracer(tracer)
    yield tracer
    obs.set_tracer(previous)


def _session(n=12, seed="obs-test"):
    return GraphSession(n, seed, k=2, enable_sparsifier=False)


# -- workload driver ---------------------------------------------------


def test_workload_phases_account_for_wall_clock(tracer, tmp_path):
    """The acceptance bar: per-phase span totals sum to within 10% of
    the root span's wall-clock, and the report reads the same spans."""
    session = _session(n=16)
    ops = scenario_ops("mixed", 16, 2_000, 7)
    driver = WorkloadDriver(
        session, checkpoint_every=1_000, checkpoint_dir=tmp_path
    )
    assert driver.tracer is tracer  # enabled process tracer is adopted
    report = driver.run(ops, scenario="mixed")

    phases = tracer.phase_seconds()
    total = phases["workload.run"]
    children = sum(
        seconds
        for path, seconds in phases.items()
        if path.count("/") == 1 and path.startswith("workload.run/")
    )
    assert total > 0
    assert children == pytest.approx(total, rel=0.10)

    # Report and trace are the same measurements — exactly, not roughly.
    assert report.ingest_seconds == pytest.approx(
        phases["workload.run/workload.ingest"], rel=1e-9
    )
    assert report.query_seconds == pytest.approx(
        phases["workload.run/workload.query"], rel=1e-9
    )
    assert report.checkpoint_seconds == pytest.approx(
        phases["workload.run/workload.checkpoint"], rel=1e-9
    )
    assert report.checkpoints >= 1


def test_workload_without_global_tracer_still_times():
    """With the noop tracer installed the driver uses a private enabled
    tracer, so the report's timings stay real."""
    assert not obs.TRACER.enabled
    session = _session()
    driver = WorkloadDriver(session)
    assert driver.tracer is not obs.TRACER
    assert driver.tracer.enabled
    report = driver.run(scenario_ops("mixed", 12, 600, 3), scenario="mixed")
    assert report.ingest_seconds > 0
    assert report.query_seconds > 0
    assert obs.TRACER.phase_seconds() == {}  # nothing leaked process-wide


# -- session cache -----------------------------------------------------


def test_cache_counters_and_stats(tracer):
    session = _session()
    session.ingest_batch(
        [EdgeUpdate(0, 1, +1), EdgeUpdate(1, 2, +1), EdgeUpdate(2, 3, +1)]
    )
    session.connected(0, 2)
    session.connected(0, 2)  # same epoch: a hit
    session.ingest_batch([EdgeUpdate(3, 4, +1)])  # advances epoch, prunes
    session.connected(0, 2)  # recompute in the new epoch

    assert tracer.counters["session.cache.hit"] == session._cache.hits
    assert tracer.counters["session.cache.miss"] == session._cache.misses
    assert tracer.counters["session.cache.prune"] == session._cache.prunes
    assert tracer.counters["session.epoch.advance"] == session.epoch
    assert "session.ingest" in tracer.phase_seconds()

    stats = session.stats()
    assert stats.cache_hits == session._cache.hits
    assert stats.cache_misses == session._cache.misses
    assert stats.cache_prunes == session._cache.prunes
    assert stats.cache_evictions == session._cache.evictions
    assert stats.cache_entries == len(session._cache)


def test_epoch_cache_bounds_same_epoch_entries():
    cache = _EpochCache(max_entries=3)
    for key in range(5):
        cache.get_or_compute(("bfs", key), epoch=1, compute=lambda k=key: k)
    assert len(cache) == 3  # FIFO-bounded within one epoch
    assert cache.evictions == 2
    # The two oldest were evicted; recomputing one is a miss.
    misses = cache.misses
    cache.get_or_compute(("bfs", 0), epoch=1, compute=lambda: 0)
    assert cache.misses == misses + 1
    # The newest survived; reading it is a hit.
    hits = cache.hits
    assert cache.get_or_compute(("bfs", 4), epoch=1, compute=lambda: -1) == 4
    assert cache.hits == hits + 1


def test_epoch_cache_prune_counts_dropped():
    cache = _EpochCache()
    cache.get_or_compute("a", epoch=1, compute=lambda: 1)
    cache.get_or_compute("b", epoch=1, compute=lambda: 2)
    cache.prune(epoch=2)
    assert len(cache) == 0
    assert cache.prunes == 2


def test_epoch_cache_rejects_unbounded():
    with pytest.raises(ValueError):
        _EpochCache(max_entries=0)


# -- checkpoint --------------------------------------------------------


def test_checkpoint_counters_and_bytes(tracer, tmp_path):
    session = _session()
    session.ingest_batch([EdgeUpdate(0, 1, +1), EdgeUpdate(1, 2, +1)])
    path = tmp_path / "ckpt.bin"
    save_session(session, path)
    restored = load_session(path)
    assert restored.updates_ingested == session.updates_ingested

    assert tracer.counters["checkpoint.writes"] == 1
    assert tracer.counters["checkpoint.restores"] == 1
    assert tracer.counters["checkpoint.bytes_written"] == path.stat().st_size
    assert tracer.counters["checkpoint.bytes_read"] == path.stat().st_size
    assert tracer.histograms["checkpoint.bytes"].count == 1
    phases = tracer.phase_seconds()
    assert phases["checkpoint.save"] > 0
    assert phases["checkpoint.load"] > 0


# -- sketch hot paths --------------------------------------------------


def test_scatter_and_decode_telemetry(tracer):
    session = _session(n=16)
    tokens = list(mixed_workload_stream(16, 400, "obs-decode"))
    session.ingest_batch(tokens)
    session.components()  # drives L0 decode / peeling
    assert tracer.histograms["sketch.scatter.batch"].count > 0
    assert tracer.counters["sketch.decode.attempt"] > 0
    assert tracer.counters["sketch.decode.peel_iterations"] > 0


# -- distributed runner ------------------------------------------------


def _connectivity_factory():
    from functools import partial

    from repro.agm import ConnectivityChecker

    return partial(ConnectivityChecker, 12, 5)


def test_round_trace_carries_timing_when_traced(tracer):
    from repro.graph import connected_gnp

    graph = connected_gnp(12, 0.3, seed=5)
    stream = stream_from_graph(graph, seed=5, churn=0.2)
    result = ShardedRunner(2).run(stream, _connectivity_factory())
    trace = result.communication.rounds[0]
    assert trace.worker_seconds > 0
    assert trace.merge_seconds > 0
    assert result.communication.worker_seconds() > 0
    assert "workers" in result.communication.summary()
    assert tracer.counters["shard.round.uplink_bytes"] == trace.uplink_bytes()


def test_round_trace_timing_zero_when_untraced():
    from repro.graph import connected_gnp

    assert not obs.TRACER.enabled
    graph = connected_gnp(12, 0.3, seed=5)
    stream = stream_from_graph(graph, seed=5, churn=0.2)
    result = ShardedRunner(2).run(stream, _connectivity_factory())
    trace = result.communication.rounds[0]
    # Bit-identity of test expectations: untraced runs report 0.0 and
    # the summary keeps its historical byte-only shape.
    assert trace.worker_seconds == 0.0
    assert trace.merge_seconds == 0.0
    assert "workers" not in result.communication.summary()
