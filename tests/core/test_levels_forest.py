"""Tests for the cluster hierarchy samples and the cluster forest."""

import pytest

from repro.core.cluster_forest import ClusterForest
from repro.core.levels import LevelSamples


class TestLevelSamples:
    def test_level_zero_is_everything(self):
        levels = LevelSamples(50, k=3, seed=1)
        assert levels.members(0) == list(range(50))

    def test_deterministic(self):
        first = LevelSamples(100, k=3, seed=2)
        second = LevelSamples(100, k=3, seed=2)
        for r in range(3):
            assert first.members(r) == second.members(r)

    def test_levels_shrink_geometrically(self):
        n, k = 4096, 3
        levels = LevelSamples(n, k, seed=3)
        sizes = [len(levels.members(r)) for r in range(k)]
        assert sizes[0] == n
        # E|C_1| = n^{2/3} = 256, E|C_2| = n^{1/3} = 16.
        assert 128 < sizes[1] < 512
        assert 4 < sizes[2] < 64

    def test_levels_of_contains_zero(self):
        levels = LevelSamples(30, k=2, seed=4)
        for v in range(30):
            assert 0 in levels.levels_of(v)

    def test_independent_levels(self):
        # Same vertex, different levels should not be perfectly correlated.
        levels = LevelSamples(2000, k=2, seed=5)
        members = set(levels.members(1))
        assert 0 < len(members) < 2000

    def test_validation(self):
        with pytest.raises(ValueError):
            LevelSamples(10, k=0, seed=1)
        with pytest.raises(ValueError):
            LevelSamples(0, k=1, seed=1)
        with pytest.raises(IndexError):
            LevelSamples(10, k=2, seed=1).contains(0, 2)

    def test_space_words_small(self):
        # The whole hierarchy is just hash seeds — O(k) words.
        assert LevelSamples(10_000, k=4, seed=6).space_words() < 200


class TestClusterForest:
    def build_small_forest(self):
        # Levels: C_0 = {0,1,2,3}, C_1 = {2, 3}; copies (0,0)..(3,0),
        # (2,1), (3,1).  Attach (0,0)->(2,1) and (1,0)->(3,1).
        forest = ClusterForest(num_vertices=4, k=2)
        for v in range(4):
            forest.register_copy((v, 0))
        for v in (2, 3):
            forest.register_copy((v, 1))
        forest.attach((0, 0), 2, witness_edge=(0, 2))
        forest.attach((1, 0), 3, witness_edge=(3, 1))
        forest.mark_terminal((2, 0))
        forest.mark_terminal((3, 0))
        forest.mark_terminal((2, 1))
        forest.mark_terminal((3, 1))
        return forest

    def test_subtree_vertices(self):
        forest = self.build_small_forest()
        assert forest.subtree_vertices((2, 1)) == {0, 2}
        assert forest.subtree_vertices((3, 1)) == {1, 3}
        assert forest.subtree_vertices((2, 0)) == {2}

    def test_terminal_trees(self):
        forest = self.build_small_forest()
        trees = forest.terminal_trees()
        assert trees[(2, 1)] == {0, 2}
        assert trees[(2, 0)] == {2}
        assert len(trees) == 4

    def test_trees_containing(self):
        forest = self.build_small_forest()
        containing = forest.trees_containing()
        assert set(containing[0]) == {(2, 1)}
        assert set(containing[2]) == {(2, 0), (2, 1)}

    def test_witness_edges_canonicalized(self):
        forest = self.build_small_forest()
        assert forest.witness_edges() == {(0, 2), (1, 3)}

    def test_validate_passes(self):
        self.build_small_forest().validate()

    def test_validate_rejects_parented_terminal(self):
        forest = self.build_small_forest()
        forest.mark_terminal((0, 0))  # (0,0) has a parent: invalid
        with pytest.raises(AssertionError):
            forest.validate()

    def test_attach_at_top_level_rejected(self):
        forest = ClusterForest(num_vertices=4, k=2)
        with pytest.raises(ValueError):
            forest.attach((0, 1), 2, witness_edge=(0, 2))

    def test_register_validation(self):
        forest = ClusterForest(num_vertices=4, k=2)
        with pytest.raises(ValueError):
            forest.register_copy((4, 0))
        with pytest.raises(ValueError):
            forest.register_copy((0, 2))
