"""Tests for the spanner-backed distance oracle."""

import math

import pytest

from repro.core.oracle import SpannerDistanceOracle, recommended_k
from repro.graph.distances import distance
from repro.graph.graph import Graph
from repro.graph.random_graphs import connected_gnp
from repro.stream.generators import stream_from_graph


class TestRecommendedK:
    def test_sqrt_log_n(self):
        assert recommended_k(2) == 1
        assert recommended_k(16) == 2
        assert recommended_k(512) == 3
        assert recommended_k(1 << 16) == 4

    def test_at_least_one(self):
        assert recommended_k(1) == 1


class TestOracle:
    def build(self, n=48, seed=1, k=2):
        graph = connected_gnp(n, 0.2, seed=seed)
        stream = stream_from_graph(graph, seed=seed, churn=0.3)
        oracle = SpannerDistanceOracle(n, seed=seed + 1, k=k).build(stream)
        return graph, oracle

    def test_query_guarantee(self):
        graph, oracle = self.build()
        for u in range(0, 48, 7):
            for v in range(3, 48, 11):
                if u == v:
                    continue
                true = distance(graph, u, v)
                estimate = oracle.query(u, v)
                assert true <= estimate <= oracle.stretch * true

    def test_same_vertex_zero(self):
        _, oracle = self.build()
        assert oracle.query(7, 7) == 0.0

    def test_disconnected_pairs_infinite(self):
        graph = Graph.from_edges(6, [(0, 1), (1, 2), (3, 4)])
        stream = stream_from_graph(graph, seed=9, churn=0.0)
        oracle = SpannerDistanceOracle(6, seed=10, k=2).build(stream)
        assert oracle.query(0, 5) == math.inf

    def test_default_k_from_policy(self):
        oracle = SpannerDistanceOracle(512, seed=1)
        assert oracle.k == recommended_k(512)
        assert oracle.stretch == 2 ** oracle.k

    def test_query_before_build_raises(self):
        oracle = SpannerDistanceOracle(8, seed=1, k=2)
        with pytest.raises(RuntimeError):
            oracle.query(0, 1)
        with pytest.raises(RuntimeError):
            oracle.spanner()

    def test_spanner_accessor(self):
        graph, oracle = self.build()
        spanner = oracle.spanner()
        for u, v, _ in spanner.edges():
            assert graph.has_edge(u, v)

    def test_space_words_positive(self):
        _, oracle = self.build(n=32)
        assert oracle.space_words() > 0

    def test_queries_cached_consistent(self):
        _, oracle = self.build(n=32)
        assert oracle.query(0, 5) == oracle.query(0, 5)
