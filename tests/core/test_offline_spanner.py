"""Tests for the offline two-phase spanner (reference semantics)."""

import math

import pytest

from repro.core.offline_spanner import offline_two_phase_spanner
from repro.graph.distances import evaluate_multiplicative_stretch
from repro.graph.graph import Graph
from repro.graph.random_graphs import (
    complete_graph,
    connected_gnp,
    cycle_graph,
    grid_graph,
    power_law_graph,
)


class TestStretch:
    @pytest.mark.parametrize("k", [1, 2, 3])
    @pytest.mark.parametrize("seed", [0, 1])
    def test_stretch_at_most_2_to_k(self, k, seed):
        graph = connected_gnp(60, 0.15, seed=seed)
        output = offline_two_phase_spanner(graph, k, seed=100 + seed)
        report = evaluate_multiplicative_stretch(graph, output.spanner)
        assert report.within(2 ** k), f"stretch {report.max_stretch} > {2 ** k}"

    def test_stretch_on_grid(self):
        graph = grid_graph(8, 8)
        output = offline_two_phase_spanner(graph, 2, seed=7)
        report = evaluate_multiplicative_stretch(graph, output.spanner)
        assert report.within(4)

    def test_stretch_on_power_law(self):
        graph = power_law_graph(80, exponent=2.3, seed=8)
        output = offline_two_phase_spanner(graph, 2, seed=9)
        report = evaluate_multiplicative_stretch(graph, output.spanner)
        assert report.within(4)

    def test_k1_keeps_connectivity_with_stretch_2(self):
        graph = connected_gnp(40, 0.2, seed=10)
        output = offline_two_phase_spanner(graph, 1, seed=11)
        report = evaluate_multiplicative_stretch(graph, output.spanner)
        assert report.within(2)


class TestStructure:
    def test_spanner_is_subgraph(self):
        graph = connected_gnp(50, 0.2, seed=12)
        output = offline_two_phase_spanner(graph, 2, seed=13)
        for u, v, _ in output.spanner.edges():
            assert graph.has_edge(u, v)

    def test_forest_is_consistent(self):
        graph = connected_gnp(50, 0.2, seed=14)
        output = offline_two_phase_spanner(graph, 3, seed=15)
        output.forest.validate()

    def test_every_vertex_in_some_terminal_tree(self):
        graph = connected_gnp(40, 0.15, seed=16)
        output = offline_two_phase_spanner(graph, 2, seed=17)
        containing = output.forest.trees_containing()
        for v in range(40):
            assert containing[v], f"vertex {v} in no terminal tree"

    def test_witness_edges_are_graph_edges(self):
        graph = connected_gnp(40, 0.2, seed=18)
        output = offline_two_phase_spanner(graph, 3, seed=19)
        for a, b in output.forest.witness_edges():
            assert graph.has_edge(a, b)

    def test_disconnected_graph_stays_disconnected(self):
        graph = Graph.from_edges(6, [(0, 1), (1, 2), (3, 4), (4, 5)])
        output = offline_two_phase_spanner(graph, 2, seed=20)
        components = sorted(map(sorted, output.spanner.connected_components()))
        assert components == [[0, 1, 2], [3, 4, 5]]

    def test_empty_graph(self):
        output = offline_two_phase_spanner(Graph(5), 2, seed=21)
        assert output.spanner.num_edges() == 0

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            offline_two_phase_spanner(Graph(3), 0, seed=1)


class TestSize:
    def test_size_bound_on_dense_graph(self):
        # Lemma 12: |E'| = O(k n^{1+1/k} log n).
        n, k = 100, 2
        graph = complete_graph(n)
        sizes = []
        for seed in range(3):
            output = offline_two_phase_spanner(graph, k, seed=seed)
            sizes.append(output.spanner.num_edges())
        bound = 4 * k * n ** (1 + 1 / k) * math.log2(n)
        assert sum(sizes) / len(sizes) < bound

    def test_dense_graph_compressed(self):
        graph = complete_graph(80)
        output = offline_two_phase_spanner(graph, 2, seed=22)
        assert output.spanner.num_edges() < graph.num_edges() / 2

    def test_sparse_graph_not_inflated(self):
        graph = cycle_graph(50)
        output = offline_two_phase_spanner(graph, 2, seed=23)
        assert output.spanner.num_edges() <= graph.num_edges()

    def test_diagnostics_terminal_counts(self):
        graph = connected_gnp(60, 0.2, seed=24)
        output = offline_two_phase_spanner(graph, 2, seed=25)
        assert any(key.startswith("terminals_level_") for key in output.diagnostics)
