"""Tests for ESTIMATE (robust connectivities, Algorithm 4)."""

import pytest

from repro.core.estimate import RobustConnectivityEstimator
from repro.core.offline_spanner import offline_two_phase_spanner
from repro.core.parameters import SparsifierParams
from repro.graph.graph import Graph
from repro.graph.random_graphs import barbell_graph, complete_graph
from repro.util.rng import derive_seed


def build_estimator(graph, k=2, seed=1, params=None):
    estimator = RobustConnectivityEstimator(
        graph.num_vertices, 2 ** k, seed=seed, params=params
    )
    for j in range(estimator.reps):
        for t in range(1, estimator.depths + 1):
            filtered = Graph(graph.num_vertices)
            for u, v, w in graph.edges():
                if estimator.member(j, t, u, v):
                    filtered.add_edge(u, v, w)
            output = offline_two_phase_spanner(filtered, k, derive_seed(seed, "o", j, t))
            estimator.attach_oracle(j, t, output.spanner)
    return estimator


class TestMembership:
    def test_level_one_contains_everything(self):
        estimator = RobustConnectivityEstimator(20, 4, seed=1)
        assert all(estimator.member(0, 1, u, u + 1) for u in range(19))

    def test_nested_in_t(self):
        estimator = RobustConnectivityEstimator(40, 4, seed=2)
        for u in range(0, 40, 3):
            for v in range(u + 1, 40, 5):
                for t in range(1, estimator.depths):
                    if estimator.member(0, t + 1, u, v):
                        assert estimator.member(0, t, u, v)

    def test_rate_halves(self):
        estimator = RobustConnectivityEstimator(60, 4, seed=3)
        pairs = [(u, v) for u in range(60) for v in range(u + 1, 60)]
        at_2 = sum(1 for u, v in pairs if estimator.member(0, 2, u, v))
        assert 0.4 * len(pairs) < at_2 < 0.6 * len(pairs)

    def test_attach_validation(self):
        estimator = RobustConnectivityEstimator(10, 4, seed=4)
        with pytest.raises(IndexError):
            estimator.attach_oracle(estimator.reps, 1, Graph(10))
        with pytest.raises(IndexError):
            estimator.attach_oracle(0, 0, Graph(10))

    def test_oracles_missing_counts(self):
        estimator = RobustConnectivityEstimator(10, 4, seed=5)
        total = estimator.reps * estimator.depths
        assert estimator.oracles_missing() == total
        estimator.attach_oracle(0, 1, Graph(10))
        assert estimator.oracles_missing() == total - 1


class TestQueries:
    def test_bridge_has_high_connectivity_estimate(self):
        """A bridge disconnects under light subsampling: q̂ large."""
        graph = barbell_graph(6)
        estimator = build_estimator(graph, seed=6)
        bridge_q = estimator.query(0, 6)
        assert bridge_q >= 2.0 ** (-4)

    def test_clique_edge_not_above_bridge(self):
        # K_8 blocks give a clear separation; with K_6 the lambda^2 slack
        # can invert the (coarse, power-of-two) estimates.
        graph = barbell_graph(8)
        estimator = build_estimator(graph, seed=7)
        bridge_q = estimator.query(0, 8)
        clique_q = estimator.query(0, 1)  # inside a K_8
        assert clique_q <= bridge_q

    def test_dense_graph_edges_survive_subsampling(self):
        graph = complete_graph(24)
        estimator = build_estimator(graph, seed=8)
        # Any K_24 edge stays well-connected under halving: q̂ below 1/2.
        assert estimator.query(3, 17) <= 0.5

    def test_sampling_level_is_log_of_query(self):
        graph = barbell_graph(6)
        estimator = build_estimator(graph, seed=9)
        for (u, v) in [(0, 6), (0, 1)]:
            level = estimator.sampling_level(u, v)
            assert 2.0 ** (-level) == pytest.approx(estimator.query(u, v))

    def test_query_without_oracles_raises(self):
        estimator = RobustConnectivityEstimator(10, 4, seed=10)
        with pytest.raises(RuntimeError):
            estimator.query(0, 1)
