"""Tests for the parameter policy (theory constants -> calibrated knobs)."""

import math

import pytest

from repro.core.parameters import AdditiveParams, SpannerParams, SparsifierParams


class TestSpannerParams:
    def test_edge_levels_is_log_n_squared(self):
        params = SpannerParams()
        assert params.edge_levels(64) == math.ceil(math.log2(64 * 64))
        assert params.edge_levels(1) >= 2

    def test_vertex_levels_is_log_n(self):
        params = SpannerParams()
        assert params.vertex_levels(64) == 6
        assert params.vertex_levels(1) >= 1

    def test_table_capacity_scales_with_level(self):
        params = SpannerParams()
        n, k = 256, 2
        low = params.table_capacity(n, 0, k)
        high = params.table_capacity(n, 1, k)
        assert low < high

    def test_table_capacity_capped_at_n(self):
        params = SpannerParams(table_capacity_factor=100.0)
        assert params.table_capacity(64, 1, 2) == 64

    def test_table_capacity_floor(self):
        params = SpannerParams(table_capacity_factor=1e-6)
        assert params.table_capacity(64, 0, 2) == 8

    def test_defaults_documented_values(self):
        params = SpannerParams()
        assert params.cluster_budget == 8
        assert params.table_stacks == 4
        assert params.repair_budget_factor > 0


class TestAdditiveParams:
    def test_center_probability_is_one_over_d(self):
        params = AdditiveParams()
        assert params.center_probability(256, 4) == pytest.approx(0.25)
        assert params.center_probability(256, 1) == 1.0

    def test_center_probability_capped(self):
        params = AdditiveParams(center_rate_factor=10.0)
        assert params.center_probability(256, 2) == 1.0

    def test_degree_threshold_d_log_n(self):
        params = AdditiveParams()
        assert params.degree_threshold(256, 4) == math.ceil(4 * 8)

    def test_neighborhood_budget_covers_threshold(self):
        params = AdditiveParams()
        for n in (64, 256):
            for d in (1, 4, 16):
                budget = params.neighborhood_budget(n, d)
                assert budget >= params.degree_threshold(n, d)

    def test_budget_floor(self):
        params = AdditiveParams(neighborhood_budget_factor=1e-6)
        assert params.neighborhood_budget(16, 1) == 8


class TestSparsifierParams:
    def test_estimate_reps_log_n(self):
        params = SparsifierParams()
        assert params.estimate_reps(256) == 8
        assert params.estimate_reps(2) >= 3

    def test_levels_default_log_n_squared(self):
        params = SparsifierParams()
        assert params.levels(64) == math.ceil(math.log2(64 * 64))

    def test_levels_override(self):
        params = SparsifierParams(estimate_levels=5)
        assert params.levels(1024) == 5

    def test_sampling_rounds_scale_with_stretch_squared(self):
        params = SparsifierParams()
        z4 = params.sampling_rounds(4, 64)
        z8 = params.sampling_rounds(8, 64)
        assert z8 == pytest.approx(4 * z4, rel=0.1)

    def test_sampling_rounds_factor_scales_linearly(self):
        small = SparsifierParams(sampling_rounds_factor=0.1)
        large = SparsifierParams(sampling_rounds_factor=0.2)
        assert large.sampling_rounds(4, 64) == pytest.approx(
            2 * small.sampling_rounds(4, 64), rel=0.1
        )

    def test_rounds_floor(self):
        params = SparsifierParams(sampling_rounds_factor=1e-9)
        assert params.sampling_rounds(4, 64) == 2

    def test_epsilon_cubed_in_denominator(self):
        tight = SparsifierParams(epsilon=0.25)
        loose = SparsifierParams(epsilon=0.5)
        assert tight.sampling_rounds(4, 64) == pytest.approx(
            8 * loose.sampling_rounds(4, 64), rel=0.15
        )
