"""Tests for the weighted two-pass spanner (Remark 14)."""

import math

import pytest

from repro.core.weighted import WeightedTwoPassSpanner
from repro.graph.distances import dijkstra_distances
from repro.graph.graph import Graph
from repro.graph.random_graphs import connected_gnp, with_random_weights
from repro.stream.generators import stream_from_graph


def build(graph, k=2, seed=1, w_min=1.0, w_max=16.0, gamma=0.5):
    stream = stream_from_graph(graph, seed=seed, churn=0.3)
    builder = WeightedTwoPassSpanner(
        graph.num_vertices, k, seed=seed, w_min=w_min, w_max=w_max, gamma=gamma
    )
    spanner = builder.run(stream)
    return builder, spanner


def max_weighted_stretch(graph, spanner):
    worst = 0.0
    for source in range(graph.num_vertices):
        base = dijkstra_distances(graph, source)
        over = dijkstra_distances(spanner, source)
        for target, dist in base.items():
            if target == source or dist == 0:
                continue
            worst = max(worst, over.get(target, math.inf) / dist)
    return worst


class TestWeightClasses:
    def test_class_count(self):
        builder = WeightedTwoPassSpanner(8, 2, seed=1, w_min=1.0, w_max=16.0, gamma=1.0)
        # log_2(16) = 4 -> classes [1,2),[2,4),[4,8),[8,16),{16}.
        assert builder.num_classes == 5

    def test_class_routing(self):
        builder = WeightedTwoPassSpanner(8, 2, seed=1, w_min=1.0, w_max=16.0, gamma=1.0)
        assert builder.weight_class(1.0) == 0
        assert builder.weight_class(1.9) == 0
        assert builder.weight_class(2.0) == 1
        assert builder.weight_class(16.0) == 4

    def test_class_representative_dominates(self):
        builder = WeightedTwoPassSpanner(8, 2, seed=1, w_min=1.0, w_max=16.0, gamma=0.5)
        for weight in (1.0, 1.4, 3.0, 9.9, 16.0):
            t = builder.weight_class(weight)
            assert builder.class_representative(t) >= weight - 1e-9

    def test_out_of_range_weight_rejected(self):
        builder = WeightedTwoPassSpanner(8, 2, seed=1, w_min=1.0, w_max=4.0)
        with pytest.raises(ValueError):
            builder.weight_class(8.0)

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            WeightedTwoPassSpanner(8, 2, seed=1, w_min=0.0, w_max=1.0)
        with pytest.raises(ValueError):
            WeightedTwoPassSpanner(8, 2, seed=1, w_min=1.0, w_max=16.0, gamma=0.0)


class TestWeightedStretch:
    @pytest.mark.parametrize("seed", [0, 1])
    def test_stretch_bound_holds(self, seed):
        graph = with_random_weights(connected_gnp(36, 0.2, seed=seed), seed=seed)
        builder, spanner = build(graph, k=2, seed=40 + seed)
        worst = max_weighted_stretch(graph, spanner)
        assert worst <= builder.stretch_bound() + 1e-6

    def test_distances_dominate_true_distances(self):
        """Class-upper-bound weights must never *under*-estimate."""
        graph = with_random_weights(connected_gnp(30, 0.25, seed=3), seed=3)
        _, spanner = build(graph, k=2, seed=44)
        for source in range(0, 30, 5):
            base = dijkstra_distances(graph, source)
            over = dijkstra_distances(spanner, source)
            for target, dist in over.items():
                if target in base:
                    assert dist >= base[target] - 1e-9

    def test_spanner_edges_exist_in_graph(self):
        graph = with_random_weights(connected_gnp(30, 0.25, seed=4), seed=4)
        _, spanner = build(graph, k=2, seed=45)
        for u, v, _ in spanner.edges():
            assert graph.has_edge(u, v)

    def test_uniform_weights_single_class(self):
        graph = connected_gnp(30, 0.2, seed=5)  # all weights 1.0
        builder, spanner = build(graph, k=2, seed=46, w_min=1.0, w_max=1.0)
        assert builder.num_classes == 1
        worst = max_weighted_stretch(graph, spanner)
        assert worst <= builder.stretch_bound() + 1e-6

    def test_space_report_aggregates_classes(self):
        graph = with_random_weights(connected_gnp(24, 0.25, seed=6), seed=6)
        builder, _ = build(graph, k=2, seed=47)
        assert builder.space_report().total_words() > 0
