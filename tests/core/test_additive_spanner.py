"""Tests for the one-pass additive spanner (Theorem 3)."""

import pytest

from repro.core.additive_spanner import AdditiveSpannerBuilder
from repro.core.parameters import AdditiveParams
from repro.graph.distances import evaluate_additive_error
from repro.graph.graph import Graph
from repro.graph.random_graphs import (
    complete_graph,
    connected_gnp,
    cycle_graph,
    power_law_graph,
)
from repro.stream.generators import stream_from_graph


def build(graph, d, seed, churn=0.3, **kwargs):
    stream = stream_from_graph(graph, seed=seed, churn=churn)
    builder = AdditiveSpannerBuilder(graph.num_vertices, d, seed=seed, **kwargs)
    spanner = builder.run(stream)
    return builder, spanner


class TestDistortion:
    @pytest.mark.parametrize("d", [2, 4])
    def test_additive_error_bounded(self, d):
        graph = connected_gnp(64, 0.15, seed=d)
        builder, spanner = build(graph, d, seed=80 + d)
        error, _ = evaluate_additive_error(graph, spanner)
        # Theorem 3: error = O(n/d); allow the detour constant (2 hops
        # per visited cluster, |C| ~ n/d clusters in expectation).
        assert error <= 6 * graph.num_vertices / d

    def test_power_law_distortion(self):
        graph = power_law_graph(96, exponent=2.3, seed=5)
        builder, spanner = build(graph, 4, seed=85)
        error, _ = evaluate_additive_error(graph, spanner)
        assert error <= 6 * 96 / 4

    def test_low_degree_graph_is_kept_exactly(self):
        # Every vertex of a cycle has degree 2 <= d log n: all edges are
        # in E_low, so the spanner is the graph itself — zero error.
        graph = cycle_graph(40)
        _, spanner = build(graph, 4, seed=86)
        error, _ = evaluate_additive_error(graph, spanner)
        assert error == 0.0
        assert spanner.edge_set() == graph.edge_set()

    def test_dense_graph_connectivity_preserved(self):
        graph = complete_graph(48)
        _, spanner = build(graph, 4, seed=87)
        assert spanner.is_connected()
        error, _ = evaluate_additive_error(graph, spanner, sample_pairs=200, seed=1)
        assert error <= 6 * 48 / 4


class TestStructure:
    def test_single_pass_declared(self):
        assert AdditiveSpannerBuilder(8, 2, seed=1).passes_required == 1

    def test_spanner_is_subgraph(self):
        graph = connected_gnp(48, 0.2, seed=6)
        _, spanner = build(graph, 4, seed=88, churn=1.0)
        for u, v, _ in spanner.edges():
            assert graph.has_edge(u, v)

    def test_deletions_respected(self):
        graph = connected_gnp(32, 0.2, seed=7)
        _, spanner = build(graph, 2, seed=89, churn=2.0)
        for u, v, _ in spanner.edges():
            assert graph.has_edge(u, v)

    def test_disconnected_graph(self):
        graph = Graph.from_edges(8, [(0, 1), (1, 2), (4, 5), (5, 6)])
        _, spanner = build(graph, 2, seed=90, churn=0.0)
        components = sorted(map(sorted, spanner.connected_components()))
        assert [0, 1, 2] in components

    def test_empty_graph(self):
        _, spanner = build(Graph(6), 2, seed=91, churn=0.0)
        assert spanner.num_edges() == 0

    def test_degree_split_diagnostics(self):
        graph = power_law_graph(80, exponent=2.2, seed=8)
        builder, _ = build(graph, 2, seed=92)
        assert builder.diagnostics["low_degree"] + builder.diagnostics["high_degree"] == 80
        assert builder.diagnostics["orphan_high_degree"] <= 2

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            AdditiveSpannerBuilder(0, 2, seed=1)
        with pytest.raises(ValueError):
            AdditiveSpannerBuilder(8, 0, seed=1)


class TestSpaceScaling:
    def test_space_grows_with_d(self):
        small = AdditiveSpannerBuilder(32, 2, seed=1)
        large = AdditiveSpannerBuilder(32, 8, seed=1)
        assert small.space_words() < large.space_words()

    def test_space_report_components(self):
        builder = AdditiveSpannerBuilder(16, 2, seed=2)
        report = builder.space_report()
        assert "neighborhood sketches" in report.components
        assert "agm sketches" in report.components


class TestSizeOfSpanner:
    def test_spanner_edge_count_near_nd(self):
        """~O(nd): E_low has <= n * O(d log n) edges, F and F' are
        forests.  Check against the generous explicit bound."""
        graph = complete_graph(40)
        builder, spanner = build(graph, 2, seed=93)
        bound = 40 * builder.degree_threshold * 3 + 2 * 40
        assert spanner.num_edges() <= bound

    def test_sparser_than_dense_input(self):
        graph = complete_graph(64)
        _, spanner = build(graph, 2, seed=94)
        assert spanner.num_edges() < graph.num_edges() / 2


class TestWireState:
    def test_state_ints_round_trip(self):
        graph = connected_gnp(24, 0.2, seed=7)
        stream = stream_from_graph(graph, seed=41, churn=0.3)
        source = AdditiveSpannerBuilder(24, 2, seed=41)
        for update in stream:
            source.process(update, pass_index=0)
        wire = source.state_ints()

        target = AdditiveSpannerBuilder(24, 2, seed=41)
        target.from_state_ints(wire)
        assert target.state_ints() == wire

    def test_from_state_ints_rejects_truncated_wire(self):
        source = AdditiveSpannerBuilder(16, 2, seed=3)
        wire = source.state_ints()
        target = AdditiveSpannerBuilder(16, 2, seed=3)
        with pytest.raises(ValueError):
            target.from_state_ints(wire[:-1])
