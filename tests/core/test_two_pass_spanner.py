"""Tests for the streaming two-pass 2^k-spanner (Theorem 1)."""

import math

import pytest

from repro.core.offline_spanner import offline_two_phase_spanner
from repro.core.parameters import SpannerParams
from repro.core.two_pass_spanner import TwoPassSpannerBuilder
from repro.graph.distances import evaluate_multiplicative_stretch
from repro.graph.graph import Graph, edge_index
from repro.graph.random_graphs import (
    complete_graph,
    connected_gnp,
    grid_graph,
    power_law_graph,
)
from repro.stream.generators import adversarial_churn_stream, stream_from_graph


def build(graph, k, seed, churn=0.3, **kwargs):
    stream = stream_from_graph(graph, seed=seed, churn=churn)
    builder = TwoPassSpannerBuilder(graph.num_vertices, k, seed=seed, **kwargs)
    output = builder.run(stream)
    return builder, output


class TestStretch:
    @pytest.mark.parametrize("k", [1, 2])
    @pytest.mark.parametrize("seed", [0, 1])
    def test_stretch_at_most_2_to_k(self, k, seed):
        graph = connected_gnp(48, 0.18, seed=seed)
        _, output = build(graph, k, seed=50 + seed)
        report = evaluate_multiplicative_stretch(graph, output.spanner)
        assert report.within(2 ** k), f"stretch {report.max_stretch} > {2 ** k}"

    def test_stretch_k3(self):
        graph = connected_gnp(64, 0.15, seed=3)
        _, output = build(graph, 3, seed=60)
        report = evaluate_multiplicative_stretch(graph, output.spanner)
        assert report.within(8)

    def test_stretch_on_grid(self):
        graph = grid_graph(6, 8)
        _, output = build(graph, 2, seed=61)
        report = evaluate_multiplicative_stretch(graph, output.spanner)
        assert report.within(4)

    def test_stretch_on_power_law(self):
        graph = power_law_graph(60, exponent=2.3, seed=4)
        _, output = build(graph, 2, seed=62)
        report = evaluate_multiplicative_stretch(graph, output.spanner)
        assert report.within(4)

    def test_stretch_under_adversarial_churn(self):
        graph = connected_gnp(40, 0.15, seed=5)
        stream = adversarial_churn_stream(graph, seed=63, rounds=2)
        builder = TwoPassSpannerBuilder(40, 2, seed=64)
        output = builder.run(stream)
        report = evaluate_multiplicative_stretch(graph, output.spanner)
        assert report.within(4)


class TestStructure:
    def test_two_passes_declared(self):
        assert TwoPassSpannerBuilder(8, 2, seed=1).passes_required == 2

    def test_spanner_is_subgraph_despite_deletions(self):
        graph = connected_gnp(48, 0.15, seed=6)
        _, output = build(graph, 2, seed=65, churn=1.0)
        for u, v, _ in output.spanner.edges():
            assert graph.has_edge(u, v), f"spanner edge {(u, v)} not in final graph"

    def test_disconnected_components_preserved(self):
        graph = Graph.from_edges(8, [(0, 1), (1, 2), (2, 3), (4, 5), (5, 6), (6, 7)])
        _, output = build(graph, 2, seed=66, churn=0.0)
        for u, v, _ in output.spanner.edges():
            assert graph.has_edge(u, v)
        components = sorted(map(sorted, output.spanner.connected_components()))
        assert components == [[0, 1, 2, 3], [4, 5, 6, 7]]

    def test_empty_graph(self):
        _, output = build(Graph(6), 2, seed=67, churn=0.0)
        assert output.spanner.num_edges() == 0

    def test_single_edge(self):
        graph = Graph.from_edges(4, [(1, 3)])
        _, output = build(graph, 2, seed=68, churn=0.0)
        assert output.spanner.edge_set() == {(1, 3)}

    def test_forest_valid(self):
        graph = connected_gnp(40, 0.2, seed=7)
        _, output = build(graph, 3, seed=69)
        output.forest.validate()

    def test_coverage_failures_rare(self):
        graph = connected_gnp(48, 0.2, seed=8)
        builder, output = build(graph, 2, seed=70)
        assert output.diagnostics["pass2_uncovered_keys"] <= 2
        assert output.diagnostics["pass2_table_overflows"] == 0

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            TwoPassSpannerBuilder(0, 2, seed=1)
        with pytest.raises(ValueError):
            TwoPassSpannerBuilder(8, 0, seed=1)


class TestSizeAndSpace:
    def test_size_bound(self):
        n, k = 64, 2
        graph = complete_graph(n)
        _, output = build(graph, k, seed=71, churn=0.0)
        bound = 4 * k * n ** (1 + 1 / k) * math.log2(n)
        assert output.spanner.num_edges() < bound

    def test_dense_graph_compressed(self):
        graph = complete_graph(64)
        _, output = build(graph, 2, seed=72, churn=0.0)
        assert output.spanner.num_edges() < graph.num_edges() / 2

    def test_space_report_components(self):
        graph = connected_gnp(32, 0.2, seed=9)
        builder, _ = build(graph, 2, seed=73)
        report = builder.space_report()
        assert "pass1 cluster sketches" in report.components
        assert "pass2 hash tables" in report.components
        assert report.total_words() > 0


class TestAugmented:
    def test_spanner_edges_subset_of_observed(self):
        graph = connected_gnp(40, 0.2, seed=10)
        _, output = build(graph, 2, seed=74, augmented=True)
        observed = output.observed_edges
        for u, v, _ in output.spanner.edges():
            assert (u, v) in observed

    def test_observed_edges_are_real(self):
        graph = connected_gnp(40, 0.2, seed=11)
        _, output = build(graph, 2, seed=75, augmented=True, churn=0.5)
        for u, v in output.observed_edges:
            assert graph.has_edge(u, v)

    def test_not_augmented_has_no_observed(self):
        graph = connected_gnp(30, 0.2, seed=12)
        _, output = build(graph, 2, seed=76, augmented=False)
        assert output.observed_edges == set()


class TestEdgeFilter:
    def test_filter_restricts_to_subgraph(self):
        graph = connected_gnp(36, 0.25, seed=13)
        keep = lambda u, v: (u + v) % 2 == 0
        stream = stream_from_graph(graph, seed=77)
        builder = TwoPassSpannerBuilder(36, 2, seed=78, edge_filter=keep)
        output = builder.run(stream)
        filtered = Graph(36)
        for u, v, w in graph.edges():
            if keep(u, v):
                filtered.add_edge(u, v, w)
        for u, v, _ in output.spanner.edges():
            assert filtered.has_edge(u, v)
        report = evaluate_multiplicative_stretch(filtered, output.spanner)
        assert report.within(4)


class TestDifferentialVsOffline:
    """The streaming and offline constructions share cluster semantics:
    both must satisfy the same invariants on the same inputs."""

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_both_meet_stretch_and_subgraph(self, seed):
        graph = connected_gnp(40, 0.2, seed=seed)
        offline = offline_two_phase_spanner(graph, 2, seed=200 + seed)
        _, streaming = build(graph, 2, seed=200 + seed)
        for output in (offline, streaming):
            report = evaluate_multiplicative_stretch(graph, output.spanner)
            assert report.within(4)
            for u, v, _ in output.spanner.edges():
                assert graph.has_edge(u, v)

    def test_sizes_comparable(self):
        graph = complete_graph(48)
        offline = offline_two_phase_spanner(graph, 2, seed=300)
        _, streaming = build(graph, 2, seed=300, churn=0.0)
        assert streaming.spanner.num_edges() <= 4 * offline.spanner.num_edges() + 50
