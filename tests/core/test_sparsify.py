"""Tests for the sparsification pipeline (Algorithms 5-6, Corollary 2)."""

import pytest

from repro.core.parameters import SparsifierParams
from repro.core.sample_spanner import SpannerSampleLevels
from repro.core.sparsify import (
    SpectralSparsifier,
    StreamingSparsifier,
    StreamingWeightedSparsifier,
    sparsify_stream,
    sparsify_weighted_graph,
)
from repro.graph.cuts import max_cut_discrepancy
from repro.graph.graph import Graph
from repro.graph.laplacian import spectral_approximation
from repro.graph.random_graphs import (
    barbell_graph,
    complete_graph,
    connected_gnp,
    with_random_weights,
)
from repro.stream.generators import stream_from_graph
from repro.stream.pipeline import run_passes


class TestSampleLevels:
    def test_member_rate(self):
        levels = SpannerSampleLevels(40, levels=8, seed=1, invocation=0)
        pairs = [(u, v) for u in range(40) for v in range(u + 1, 40)]
        at_1 = sum(1 for u, v in pairs if levels.member(1, u, v))
        at_3 = sum(1 for u, v in pairs if levels.member(3, u, v))
        assert 0.4 * len(pairs) < at_1 < 0.6 * len(pairs)
        assert 0.08 * len(pairs) < at_3 < 0.18 * len(pairs)

    def test_invocations_independent(self):
        first = SpannerSampleLevels(40, levels=8, seed=1, invocation=0)
        second = SpannerSampleLevels(40, levels=8, seed=1, invocation=1)
        pairs = [(u, v) for u in range(40) for v in range(u + 1, 40)]
        differing = sum(
            1 for u, v in pairs if first.member(1, u, v) != second.member(1, u, v)
        )
        assert differing > 0.3 * len(pairs)

    def test_weighted_output_keeps_matching_levels_only(self):
        levels = SpannerSampleLevels(10, levels=4, seed=2, invocation=0)
        levels.attach_level_output(1, {(0, 1), (2, 3)})
        levels.attach_level_output(2, {(0, 1), (4, 5)})
        level_of = {(0, 1): 2, (2, 3): 1, (4, 5): 3}.get
        output = levels.weighted_output(level_of)
        assert output == {(0, 1): 4.0, (2, 3): 2.0}

    def test_recovered_union(self):
        levels = SpannerSampleLevels(10, levels=4, seed=3, invocation=0)
        levels.attach_level_output(1, {(0, 1)})
        levels.attach_level_output(2, {(1, 2)})
        assert levels.recovered_edges() == {(0, 1), (1, 2)}

    def test_level_bounds_validated(self):
        levels = SpannerSampleLevels(10, levels=4, seed=4, invocation=0)
        with pytest.raises(IndexError):
            levels.member(0, 0, 1)
        with pytest.raises(IndexError):
            levels.member(5, 0, 1)


class TestOfflineSparsifier:
    def test_quality_on_random_graph(self):
        graph = connected_gnp(36, 0.3, seed=1)
        params = SparsifierParams(sampling_rounds_factor=0.15)
        pipeline = SpectralSparsifier(36, seed=2, k=2, params=params)
        sparsifier = pipeline.sparsify_graph(graph)
        bounds = spectral_approximation(graph, sparsifier)
        assert bounds.epsilon() < 0.8
        assert max_cut_discrepancy(graph, sparsifier, trials=60, seed=3) < 0.5

    def test_quality_improves_with_rounds(self):
        graph = connected_gnp(36, 0.3, seed=4)
        epsilons = []
        for factor in (0.04, 0.2):
            params = SparsifierParams(sampling_rounds_factor=factor)
            pipeline = SpectralSparsifier(36, seed=5, k=2, params=params)
            bounds = spectral_approximation(graph, pipeline.sparsify_graph(graph))
            epsilons.append(bounds.epsilon())
        assert epsilons[1] < epsilons[0] + 0.05

    def test_dense_graph_compressed(self):
        graph = complete_graph(40)
        params = SparsifierParams(sampling_rounds_factor=0.08)
        pipeline = SpectralSparsifier(40, seed=6, k=2, params=params)
        sparsifier = pipeline.sparsify_graph(graph)
        assert sparsifier.num_edges() < 0.8 * graph.num_edges()
        bounds = spectral_approximation(graph, sparsifier)
        assert bounds.epsilon() < 1.0

    def test_bridge_preserved(self):
        graph = barbell_graph(6)
        params = SparsifierParams(sampling_rounds_factor=0.3)
        pipeline = SpectralSparsifier(graph.num_vertices, seed=7, k=2, params=params)
        sparsifier = pipeline.sparsify_graph(graph)
        assert sparsifier.has_edge(0, 6)

    def test_output_edges_are_input_edges(self):
        graph = connected_gnp(30, 0.3, seed=8)
        params = SparsifierParams(sampling_rounds_factor=0.05)
        pipeline = SpectralSparsifier(30, seed=9, k=2, params=params)
        sparsifier = pipeline.sparsify_graph(graph)
        for u, v, _ in sparsifier.edges():
            assert graph.has_edge(u, v)

    def test_graph_size_mismatch_rejected(self):
        pipeline = SpectralSparsifier(10, seed=1, k=2)
        with pytest.raises(ValueError):
            pipeline.sparsify_graph(Graph(11))

    def test_invalid_k_rejected(self):
        with pytest.raises(ValueError):
            SpectralSparsifier(10, seed=1, k=0)


class TestStreamingSparsifier:
    def test_two_passes_and_loose_quality(self):
        graph = connected_gnp(20, 0.35, seed=10)
        stream = stream_from_graph(graph, seed=11, churn=0.4)
        params = SparsifierParams(sampling_rounds_factor=0.03)
        algorithm = StreamingSparsifier(20, seed=12, k=2, params=params)
        assert algorithm.passes_required == 2
        sparsifier = run_passes(stream, algorithm)
        assert sparsifier.num_edges() > 0
        for u, v, _ in sparsifier.edges():
            assert graph.has_edge(u, v)
        bounds = spectral_approximation(graph, sparsifier)
        assert bounds.epsilon() < 2.5  # smoke-scale Z: loose bound
        assert max_cut_discrepancy(graph, sparsifier, trials=40, seed=13) < 1.2
        assert algorithm.space_words() > 0

    def test_sparsify_stream_helper(self):
        graph = connected_gnp(16, 0.4, seed=14)
        stream = stream_from_graph(graph, seed=15, churn=0.3)
        params = SparsifierParams(sampling_rounds_factor=0.02)
        sparsifier = sparsify_stream(stream, seed=16, k=2, params=params)
        for u, v, _ in sparsifier.edges():
            assert graph.has_edge(u, v)


class TestStreamingWeightedSparsifier:
    def test_weighted_streaming_two_passes(self):
        graph = with_random_weights(
            connected_gnp(14, 0.45, seed=30), seed=30, w_min=1.0, w_max=4.0
        )
        stream = stream_from_graph(graph, seed=31, churn=0.3)
        params = SparsifierParams(sampling_rounds_factor=0.02)
        algorithm = StreamingWeightedSparsifier(
            14, seed=32, w_min=1.0, w_max=4.0, k=2, params=params
        )
        assert algorithm.passes_required == 2
        assert algorithm.num_classes == 3
        sparsifier = run_passes(stream, algorithm)
        assert sparsifier.num_edges() > 0
        for u, v, _ in sparsifier.edges():
            assert graph.has_edge(u, v)
        # Loose smoke-scale quality: the spectral ratio stays bounded.
        bounds = spectral_approximation(graph, sparsifier)
        assert bounds.epsilon() < 3.0

    def test_class_routing(self):
        algorithm = StreamingWeightedSparsifier(8, seed=1, w_min=1.0, w_max=8.0)
        assert algorithm.weight_class(1.0) == 0
        assert algorithm.weight_class(3.0) == 1
        assert algorithm.weight_class(8.0) == 3
        with pytest.raises(ValueError):
            algorithm.weight_class(16.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            StreamingWeightedSparsifier(8, seed=1, w_min=0.0, w_max=1.0)
        with pytest.raises(ValueError):
            StreamingWeightedSparsifier(8, seed=1, w_min=1.0, w_max=2.0, class_ratio=1.0)


class TestWeightedSparsifier:
    def test_weighted_quality(self):
        graph = with_random_weights(connected_gnp(24, 0.35, seed=17), seed=17, w_min=1.0, w_max=4.0)
        params = SparsifierParams(sampling_rounds_factor=0.1)
        sparsifier = sparsify_weighted_graph(graph, seed=18, k=2, params=params)
        bounds = spectral_approximation(graph, sparsifier)
        assert bounds.epsilon() < 1.2

    def test_empty_graph(self):
        assert sparsify_weighted_graph(Graph(5), seed=1).num_edges() == 0

    def test_invalid_class_ratio(self):
        with pytest.raises(ValueError):
            sparsify_weighted_graph(Graph(5), seed=1, class_ratio=1.0)
