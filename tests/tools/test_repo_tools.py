"""The shared tooling layer: bench-suite discovery and perf-gate exits.

``perf_regress`` promises *distinct* exit codes per failure mode (ok /
regressed / invalid / missing) so CI scripts can branch on them; each is
pinned here against fixture suites, with the real benchmark tree left
untouched.
"""

import json

import pytest

from tools import _repo, perf_regress


def make_suite(tmp_path, name="unit", fresh=None, baseline=None):
    """A fixture BenchSuite with optional measurement/baseline files."""
    results_path = tmp_path / f"results_BENCH_{name}.json"
    baseline_path = tmp_path / f"baseline_BENCH_{name}.json"
    if fresh is not None:
        results_path.write_text(json.dumps({"updates_per_second": fresh}))
    if baseline is not None:
        baseline_path.write_text(json.dumps({"updates_per_second": baseline}))
    return _repo.BenchSuite(
        name=name,
        results_path=results_path,
        baseline_path=baseline_path,
        target=f"make bench-{name}",
    )


@pytest.fixture
def suites(tmp_path, monkeypatch):
    """Install fixture suites as the tool's whole bench universe."""

    def install(*built):
        table = {suite.name: suite for suite in built}
        monkeypatch.setattr(perf_regress._repo, "bench_suites", lambda: table)
        return table

    return install


def test_within_tolerance_exits_ok(tmp_path, suites, capsys):
    suites(make_suite(tmp_path, fresh={"a": 95.0}, baseline={"a": 100.0}))
    assert perf_regress.main([]) == perf_regress.EXIT_OK
    assert "all rates within tolerance" in capsys.readouterr().out


def test_regression_exits_one(tmp_path, suites, capsys):
    suites(make_suite(tmp_path, fresh={"a": 50.0}, baseline={"a": 100.0}))
    assert perf_regress.main([]) == perf_regress.EXIT_REGRESSION
    assert "REGRESSION" in capsys.readouterr().out


def test_missing_measurement_exits_three(tmp_path, suites, capsys):
    suites(make_suite(tmp_path, fresh=None, baseline={"a": 100.0}))
    assert perf_regress.main([]) == perf_regress.EXIT_MISSING
    assert "is missing" in capsys.readouterr().err


def test_missing_baseline_exits_three(tmp_path, suites):
    suites(make_suite(tmp_path, fresh={"a": 100.0}, baseline=None))
    assert perf_regress.main([]) == perf_regress.EXIT_MISSING


def test_invalid_json_exits_two(tmp_path, suites):
    suite = make_suite(tmp_path, fresh={"a": 100.0}, baseline={"a": 100.0})
    suite.results_path.write_text("{not json")
    suites(suite)
    assert perf_regress.main([]) == perf_regress.EXIT_INVALID


def test_unknown_suite_exits_two(tmp_path, suites):
    suites(make_suite(tmp_path, fresh={"a": 1.0}, baseline={"a": 1.0}))
    assert perf_regress.main(["no-such-suite"]) == perf_regress.EXIT_INVALID


def test_rate_missing_from_fresh_is_regression(tmp_path, suites):
    suites(make_suite(tmp_path, fresh={"a": 100.0}, baseline={"a": 100.0, "b": 5.0}))
    assert perf_regress.main([]) == perf_regress.EXIT_REGRESSION


def test_update_baseline_writes_floors(tmp_path, suites):
    suite = make_suite(tmp_path, fresh={"a": 100.0}, baseline=None)
    suites(suite)
    assert perf_regress.main(["--update-baseline"]) == perf_regress.EXIT_OK
    written = json.loads(suite.baseline_path.read_text())
    assert written["updates_per_second"]["a"] == pytest.approx(
        100.0 * perf_regress.BASELINE_FRACTION
    )
    # And a fresh run against the new floors passes.
    assert perf_regress.main([]) == perf_regress.EXIT_OK


def test_live_bench_suites_discovered():
    table = _repo.bench_suites()
    assert {"columnar", "sparse"} <= set(table)
    for suite in table.values():
        assert suite.baseline_path.exists()


def test_module_name_maps_src_tree():
    path = _repo.SRC_DIR / "repro" / "sketch" / "batched.py"
    assert _repo.module_name(path) == "repro.sketch.batched"
    assert _repo.module_name(_repo.REPO_ROOT / "scratch.py") == "scratch"
