"""sketchlint: per-checker fixtures, suppressions, CLI schema, and the
meta-test that the live ``src/`` tree is clean.

Each checker family gets a known-bad fixture (written to ``tmp_path``
and linted with a fixture-sized :class:`~tools.sketchlint.config.Config`)
plus a known-good twin, so a checker that silently stops firing — or
starts firing on clean code — fails here, not in review.
"""

import dataclasses
import json
import textwrap

import pytest

from tools import _repo
from tools.sketchlint import cli
from tools.sketchlint.checkers import protocol, recovery, wallclock
from tools.sketchlint.config import DEFAULT_CONFIG, Config
from tools.sketchlint.model import load_paths
from tools.sketchlint.registry import all_checkers


def lint_source(tmp_path, source, config=DEFAULT_CONFIG, name="fixture.py"):
    """Write ``source`` to a fixture module and lint it."""
    path = tmp_path / name
    path.write_text(textwrap.dedent(source))
    return cli.run_paths([path], config=config)


def codes_of(result):
    return [d.code for d in result.diagnostics]


# -- protocol (SL1xx) --------------------------------------------------


def test_broken_sketch_fails_protocol(tmp_path):
    result = lint_source(
        tmp_path,
        """
        class BrokenSketch:
            def combine(self, other, sign=1):
                pass

            def update(self, index, delta):
                pass
        """,
    )
    codes = codes_of(result)
    # No clone, no wire protocol, no space accounting, no batch path.
    assert codes.count("SL101") == 3
    assert "SL105" in codes


def test_conforming_sketch_is_clean(tmp_path):
    result = lint_source(
        tmp_path,
        """
        class GoodSketch:
            def combine(self, other, sign=1): pass
            def clone(self): pass
            def update(self, index, delta): pass
            def update_batch(self, indices, deltas): pass
            def state_ints(self): return []
            def from_state_ints(self, values): return self
            def space_words(self): return 0
        """,
    )
    assert result.clean


def test_contract_resolves_through_repo_local_bases(tmp_path):
    result = lint_source(
        tmp_path,
        """
        class Base:
            def clone(self): pass
            def state_ints(self): return []
            def from_state_ints(self, values): return self
            def space_words(self): return 0
            def update_batch(self, indices, deltas): pass

        class Derived(Base):
            def combine(self, other, sign=1): pass
            def update(self, index, delta): pass
        """,
    )
    assert result.clean


def test_partial_shard_protocol_flagged(tmp_path):
    result = lint_source(
        tmp_path,
        """
        class PartialShard(StreamingAlgorithm):
            @property
            def passes_required(self): return 1
            def process(self, update, pass_index): pass
            def finalize(self): return None
            def shard_state_ints(self): return []
        """,
    )
    assert "SL102" in codes_of(result)


def test_missing_abstract_members_flagged(tmp_path):
    result = lint_source(
        tmp_path,
        """
        class Hollow(StreamingAlgorithm):
            @property
            def passes_required(self): return 1
        """,
    )
    codes = codes_of(result)
    assert "SL103" in codes
    message = next(d.message for d in result.diagnostics if d.code == "SL103")
    assert "process" in message and "finalize" in message


def test_stack_missing_sparse_wire_flagged(tmp_path):
    result = lint_source(
        tmp_path,
        """
        class HalfStack:
            def combine(self, other, sign=1): pass
            def clone(self): pass
            def space_words(self): return 0
            def state_ints(self): return []
            def from_state_ints(self, values): return self
            def row_state_ints(self, row): return []
            def load_row_state(self, row, values): pass
        """,
    )
    assert "SL104" in codes_of(result)


# -- field / dtype (SL2xx) ---------------------------------------------


FIELD_CONFIG = dataclasses.replace(
    DEFAULT_CONFIG,
    kernel_modules=frozenset(),
    field_module_prefixes=("fieldmod",),
)


def test_literal_prime_flagged(tmp_path):
    result = lint_source(tmp_path, "P = (1 << 61) - 1\n", name="fieldmod.py",
                         config=FIELD_CONFIG)
    assert codes_of(result) == ["SL201"]
    result = lint_source(tmp_path, "P = 2305843009213693951\n",
                         name="fieldmod.py", config=FIELD_CONFIG)
    assert codes_of(result) == ["SL201"]


def test_hand_rolled_coercion_flagged(tmp_path):
    result = lint_source(
        tmp_path,
        """
        import numpy as np
        from repro.sketch.hashing import MERSENNE_61

        def coerce(values):
            return np.remainder(values, MERSENNE_61).astype(np.uint64)
        """,
        name="fieldmod.py",
        config=FIELD_CONFIG,
    )
    assert "SL202" in codes_of(result)


def test_coercion_allowed_inside_kernels(tmp_path):
    config = dataclasses.replace(FIELD_CONFIG, kernel_modules=frozenset({"fieldmod"}))
    result = lint_source(
        tmp_path,
        """
        import numpy as np
        from repro.sketch.hashing import MERSENNE_61

        def coerce(values):
            return np.remainder(values, MERSENNE_61).astype(np.uint64)
        """,
        name="fieldmod.py",
        config=config,
    )
    assert result.clean


def test_float_contamination_flagged(tmp_path):
    result = lint_source(
        tmp_path,
        """
        import numpy as np

        def bad(x):
            y = x.astype(np.float64)
            z = np.zeros(4, dtype=np.int32)
            return y, z
        """,
        name="fieldmod.py",
        config=FIELD_CONFIG,
    )
    assert codes_of(result).count("SL203") == 2


def test_unguarded_sum_flagged_guarded_allowed(tmp_path):
    result = lint_source(
        tmp_path,
        """
        from repro.sketch.batched import fits_int64_products

        def unguarded(x):
            return x.sum()

        def guarded(x, idx):
            if fits_int64_products(x.size, 1, int(idx.max())):
                return x.sum()
            return None

        def explicit(x):
            return x.sum(dtype=object)
        """,
        name="fieldmod.py",
        config=FIELD_CONFIG,
    )
    flagged = [d for d in result.diagnostics if d.code == "SL204"]
    assert len(flagged) == 1 and flagged[0].line == 5


# -- kernel dispatch (SL205) -------------------------------------------


def test_kernel_name_import_from_non_dispatch_flagged(tmp_path):
    result = lint_source(
        tmp_path,
        """
        from repro.sketch.batched import mulmod61

        def use(a, b):
            return mulmod61(a, b)
        """,
        name="clientmod.py",
    )
    assert codes_of(result) == ["SL205"]


def test_kernel_import_from_dispatch_facade_is_clean(tmp_path):
    result = lint_source(
        tmp_path,
        """
        from repro.sketch.kernels import mulmod61, scatter_sum_mod61

        def use(a, b):
            return scatter_sum_mod61(mulmod61(a, b), a, 4)
        """,
        name="clientmod.py",
    )
    assert result.clean


def test_backend_module_import_flagged(tmp_path):
    result = lint_source(
        tmp_path,
        """
        import repro.sketch.kernels.native
        from repro.sketch.kernels import limb
        from repro.sketch.kernels.reference import mulmod61
        """,
        name="clientmod.py",
    )
    assert codes_of(result) == ["SL205", "SL205", "SL205"]


def test_kernel_shadow_definition_flagged(tmp_path):
    result = lint_source(
        tmp_path,
        """
        def mulmod61(a, b):
            return a * b
        """,
        name="clientmod.py",
    )
    assert codes_of(result) == ["SL205"]


def test_backends_free_inside_kernels_package(tmp_path):
    config = dataclasses.replace(DEFAULT_CONFIG, kernel_dispatch_module="kernmod")
    result = lint_source(
        tmp_path,
        """
        def mulmod61(a, b):
            return a * b
        """,
        name="kernmod.py",
        config=config,
    )
    assert result.clean


def test_live_src_routes_kernels_through_dispatch():
    # The real tree: every kernel call site outside the kernels package
    # imports from the dispatch facade, so backend selection is global.
    index, errors = load_paths([_repo.SRC_DIR], DEFAULT_CONFIG)
    assert errors == []
    from tools.sketchlint.checkers import dispatch as dispatch_checker

    offenders = sorted({
        d.path for d in dispatch_checker.check_dispatch(index)
    })
    assert offenders == []


# -- determinism (SL3xx) -----------------------------------------------


SEAM_CONFIG = dataclasses.replace(
    DEFAULT_CONFIG, seam_modules=frozenset({"seammod"})
)

NONDETERMINISTIC = """
    import random
    import time

    import numpy as np

    def tainted():
        a = random.random()
        b = random.Random(7).random()  # seeded instance: allowed
        c = np.random.rand(3)
        t = time.time()
        h = hash("key")
        return a, b, c, t, h
"""


def test_seam_randomness_and_clock_flagged(tmp_path):
    result = lint_source(tmp_path, NONDETERMINISTIC, name="seammod.py",
                         config=SEAM_CONFIG)
    codes = codes_of(result)
    assert codes.count("SL301") == 1  # random.random(); Random(7) exempt
    assert "SL302" in codes
    assert "SL303" in codes
    assert "SL304" in codes


def test_off_seam_module_not_checked(tmp_path):
    result = lint_source(tmp_path, NONDETERMINISTIC, name="freemod.py",
                         config=SEAM_CONFIG)
    assert result.clean


def test_seam_closure_follows_local_imports(tmp_path):
    # helper is NOT seam-listed; it is reachable only because the seam
    # imports it, so a finding there proves the transitive closure.
    (tmp_path / "helper.py").write_text(
        "import time\n\ndef now():\n    return time.time()\n"
    )
    (tmp_path / "seammod.py").write_text("import helper\n")
    config = dataclasses.replace(
        DEFAULT_CONFIG,
        seam_modules=frozenset({"seammod"}),
        local_prefix="helper",
    )
    result = cli.run_paths([tmp_path], config=config)
    assert "SL303" in codes_of(result)


# -- wallclock (SL5xx) -------------------------------------------------


CLOCKY = """
    import time

    def measure():
        start = time.perf_counter()
        clock = time.monotonic
        return clock() - start
"""


def _wallclock_config(local_prefix, allowed=()):
    return dataclasses.replace(
        DEFAULT_CONFIG, local_prefix=local_prefix,
        wallclock_allowed_prefixes=allowed,
    )


def test_raw_clock_in_local_module_flagged(tmp_path):
    result = lint_source(tmp_path, CLOCKY, name="appmod.py",
                         config=_wallclock_config("appmod"))
    # Both the perf_counter() call and the stored time.monotonic
    # reference fire: a saved "clock" callable is the same bypass.
    assert codes_of(result).count("SL501") == 2


def test_clock_allowed_inside_obs_layer(tmp_path):
    result = lint_source(tmp_path, CLOCKY, name="obsmod.py",
                         config=_wallclock_config("obsmod", ("obsmod",)))
    assert result.clean


def test_clock_outside_local_prefix_not_checked(tmp_path):
    # benchmarks / tools / tests live outside the repro.* namespace and
    # may time themselves however they like.
    result = lint_source(tmp_path, CLOCKY, name="benchmod.py",
                         config=_wallclock_config("appmod"))
    assert result.clean


def test_live_obs_layer_is_the_only_clock_owner():
    # The real tree: repro.obs.tracer holds the one clock reference.
    # Run the checker's file scan with the allowlist disabled so a
    # second clock anywhere under src/ shows up here by name.
    index, errors = load_paths([_repo.SRC_DIR], DEFAULT_CONFIG)
    assert errors == []
    clockful = sorted({
        source.module
        for source in index.files
        if any(True for _ in wallclock._check_file(source))
    })
    assert clockful == ["repro.obs.tracer"]


# -- recovery (SL6xx) --------------------------------------------------


def _recovery_config(*prefixes):
    return dataclasses.replace(
        DEFAULT_CONFIG, recovery_module_prefixes=prefixes,
    )


def test_bare_except_on_recovery_seam_flagged(tmp_path):
    result = lint_source(
        tmp_path,
        """
        def load():
            try:
                return open("x").read()
            except:
                return None
        """,
        name="recmod.py",
        config=_recovery_config("recmod"),
    )
    assert codes_of(result) == ["SL601"]


def test_swallowed_exception_flagged(tmp_path):
    result = lint_source(
        tmp_path,
        """
        def restore(paths):
            for path in paths:
                try:
                    return open(path).read()
                except OSError:
                    continue
            return None
        """,
        name="recmod.py",
        config=_recovery_config("recmod"),
    )
    assert codes_of(result) == ["SL602"]


def test_reraising_handler_is_clean(tmp_path):
    result = lint_source(
        tmp_path,
        """
        def restore(path):
            try:
                return open(path).read()
            except OSError as error:
                raise RuntimeError(f"cannot restore {path}") from error
        """,
        name="recmod.py",
        config=_recovery_config("recmod"),
    )
    assert result.clean


def test_counting_handler_is_clean(tmp_path):
    result = lint_source(
        tmp_path,
        """
        import obs

        def restore(paths):
            for path in paths:
                try:
                    return open(path).read()
                except OSError:
                    obs.TRACER.count("checkpoint.corrupt_detected")
            return None
        """,
        name="recmod.py",
        config=_recovery_config("recmod"),
    )
    assert result.clean


def test_raise_inside_nested_def_does_not_count(tmp_path):
    # A `raise` in a function *defined* inside the handler only runs if
    # someone later calls it — the handler itself still swallows.
    result = lint_source(
        tmp_path,
        """
        def restore(path):
            try:
                return open(path).read()
            except OSError:
                def escalate():
                    raise RuntimeError("never called")
                return None
        """,
        name="recmod.py",
        config=_recovery_config("recmod"),
    )
    assert codes_of(result) == ["SL602"]


def test_swallow_outside_recovery_prefixes_not_checked(tmp_path):
    result = lint_source(
        tmp_path,
        """
        def probe(value):
            try:
                return int(value)
            except ValueError:
                return None
        """,
        name="othermod.py",
        config=_recovery_config("recmod"),
    )
    assert result.clean


def test_recovery_suppression_carries_reason(tmp_path):
    result = lint_source(
        tmp_path,
        """
        def probe(value):
            try:
                return int(value)
            # sketchlint: disable=SL602 type probe, None is the answer
            except ValueError:
                return None
        """,
        name="recmod.py",
        config=_recovery_config("recmod"),
    )
    assert result.clean


def test_live_recovery_seams_are_disciplined():
    # The real tree: every handler in the recovery seams either
    # re-raises, counts through obs, or carries a reviewed suppression.
    index, errors = load_paths([_repo.SRC_DIR], DEFAULT_CONFIG)
    assert errors == []
    covered = [
        source for source in index.files
        if recovery._in_scope(
            source.module, DEFAULT_CONFIG.recovery_module_prefixes
        )
    ]
    # The seams actually contain the modules PR 9 hardened.
    modules = {source.module for source in covered}
    assert {
        "repro.service.checkpoint", "repro.service.session",
        "repro.stream.distributed", "repro.faults.injector",
        "repro.faults.chaos",
    } <= modules


# -- wire pairing (SL4xx) ----------------------------------------------


def test_writer_without_reader_flagged(tmp_path):
    result = lint_source(
        tmp_path,
        """
        class WriterOnly:
            def state_ints(self): return []
        """,
    )
    assert "SL401" in codes_of(result)


def test_reader_without_writer_flagged(tmp_path):
    result = lint_source(
        tmp_path,
        """
        class ReaderOnly:
            def load_sparse_state(self, values, cursor=0):
                return cursor
        """,
    )
    assert "SL402" in codes_of(result)


def test_cursor_reader_without_cursor_param_flagged(tmp_path):
    result = lint_source(
        tmp_path,
        """
        class BadFraming:
            def sparse_state_ints(self): return []
            def load_sparse_state(self, values):
                return 0
        """,
    )
    assert "SL403" in codes_of(result)


def test_cursor_reader_swallowing_cursor_flagged(tmp_path):
    result = lint_source(
        tmp_path,
        """
        class Swallows:
            def sparse_state_ints(self): return []
            def load_sparse_state(self, values, cursor=0):
                if not values:
                    return
                return cursor
        """,
    )
    assert "SL403" in codes_of(result)


def test_paired_wire_is_clean(tmp_path):
    result = lint_source(
        tmp_path,
        """
        class Paired:
            def state_ints(self): return []
            def load_state_ints(self, values, cursor=0):
                return cursor
        """,
    )
    assert result.clean


# -- suppressions ------------------------------------------------------


def test_reasoned_suppression_honored(tmp_path):
    result = lint_source(
        tmp_path,
        """
        import numpy as np
        from repro.sketch.hashing import MERSENNE_61

        def coerce(values):
            return np.remainder(values, MERSENNE_61)  # sketchlint: disable=SL202 fixture exercises suppression
        """,
        name="fieldmod.py",
        config=FIELD_CONFIG,
    )
    assert result.clean


def test_standalone_suppression_covers_next_line(tmp_path):
    result = lint_source(
        tmp_path,
        """
        import numpy as np
        from repro.sketch.hashing import MERSENNE_61

        def coerce(values):
            # sketchlint: disable=SL202 fixture exercises standalone form
            return np.remainder(values, MERSENNE_61)
        """,
        name="fieldmod.py",
        config=FIELD_CONFIG,
    )
    assert result.clean


def test_reasonless_suppression_is_malformed(tmp_path):
    result = lint_source(
        tmp_path,
        """
        import numpy as np
        from repro.sketch.hashing import MERSENNE_61

        def coerce(values):
            return np.remainder(values, MERSENNE_61)  # sketchlint: disable=SL202
        """,
        name="fieldmod.py",
        config=FIELD_CONFIG,
    )
    codes = codes_of(result)
    assert "SL001" in codes  # the blanket disable itself is a finding
    assert "SL202" in codes  # and the rejected suppression silences nothing


def test_unknown_code_shape_is_malformed(tmp_path):
    result = lint_source(
        tmp_path,
        "x = 1  # sketchlint: disable=SL9999 not a real code shape\n",
    )
    assert codes_of(result) == ["SL001"]


# -- CLI / JSON schema -------------------------------------------------


def test_cli_json_schema_on_live_src(capsys):
    exit_code = cli.main(["--json", str(_repo.SRC_DIR)])
    payload = json.loads(capsys.readouterr().out)
    assert exit_code == 0
    assert payload["version"] == 1
    assert payload["diagnostics"] == []
    assert payload["errors"] == []
    assert len(payload["checkers"]) >= 4
    assert {c["name"] for c in payload["checkers"]} >= {
        "protocol", "field", "determinism", "wire",
    }
    inventory = payload["inventory"]
    assert len(inventory["sketch_classes"]) >= 10
    assert len(inventory["streaming_algorithms"]) >= 5
    for entry in payload["diagnostics"]:
        assert set(entry) == {"file", "line", "code", "message", "checker"}


def test_cli_human_output_and_exit(tmp_path, capsys):
    bad = tmp_path / "fixture.py"
    bad.write_text("class WriterOnly:\n    def state_ints(self): return []\n")
    exit_code = cli.main([str(bad)])
    out = capsys.readouterr().out
    assert exit_code == 1
    assert ":2: SL401" in out  # anchored at the writer method, not the class


def test_cli_list_checkers(capsys):
    assert cli.main(["--list-checkers"]) == 0
    out = capsys.readouterr().out
    for family in ("protocol", "field", "determinism", "wire"):
        assert family in out


def test_cli_requires_paths(capsys):
    with pytest.raises(SystemExit) as excinfo:
        cli.main([])
    assert excinfo.value.code == 2


def test_syntax_error_reported_not_crashed(tmp_path, capsys):
    bad = tmp_path / "broken.py"
    bad.write_text("def oops(:\n")
    assert cli.main([str(bad)]) == 1
    assert "syntax error" in capsys.readouterr().err


# -- the meta-test: the live tree conforms to its own invariants -------


def test_live_src_is_clean():
    result = cli.run_paths([_repo.SRC_DIR])
    assert result.errors == []
    assert result.diagnostics == [], "\n".join(
        d.format(_repo.REPO_ROOT) for d in result.diagnostics
    )


def test_live_inventory_is_complete():
    index, errors = load_paths([_repo.SRC_DIR], DEFAULT_CONFIG)
    assert errors == []
    registry = protocol.discover(index)
    names = {info.name for info in registry["sketches"]}
    assert {
        "AgmSketch", "CountSketch", "DistinctElementsSketch", "L0Sampler",
        "OneSparseDetector", "SketchStack", "SparseRecoverySketch",
    } <= names
    assert len(registry["sketches"]) + len(registry["algorithms"]) >= 10


def test_registry_exposes_all_families():
    families = {checker.name for checker in all_checkers()}
    assert families >= {
        "protocol", "field", "dispatch", "determinism", "wire", "wallclock",
        "recovery",
    }
    codes = {code for checker in all_checkers() for code in checker.codes}
    assert len(codes) >= 15
