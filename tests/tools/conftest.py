"""Put the repo root on ``sys.path`` so ``import tools.*`` resolves.

The product package rides ``PYTHONPATH=src``; the ``tools`` package
lives at the repo root and is normally imported via ``python -m`` from
there.
"""

import pathlib
import sys

_REPO_ROOT = str(pathlib.Path(__file__).resolve().parents[2])
if _REPO_ROOT not in sys.path:
    sys.path.insert(0, _REPO_ROOT)
