"""Tests for stream generators, pass control and space reports."""

import pytest

from repro.graph.random_graphs import connected_gnp, random_gnp
from repro.stream.generators import adversarial_churn_stream, stream_from_graph
from repro.stream.pipeline import StreamingAlgorithm, run_passes
from repro.stream.space import SpaceReport
from repro.stream.stream import DynamicStream


class TestStreamFromGraph:
    def test_final_graph_matches(self):
        graph = random_gnp(30, 0.2, seed=1)
        stream = stream_from_graph(graph, seed=2)
        assert stream.final_graph() == graph

    def test_churn_preserves_final_graph(self):
        graph = random_gnp(30, 0.2, seed=3)
        stream = stream_from_graph(graph, seed=4, churn=1.0)
        assert stream.final_graph() == graph
        assert stream.num_deletions() > 0

    def test_churn_token_count(self):
        graph = random_gnp(30, 0.3, seed=5)
        stream = stream_from_graph(graph, seed=6, churn=0.5)
        m = graph.num_edges()
        expected_transient = int(0.5 * m)
        assert len(stream) == m + 2 * expected_transient

    def test_weighted_graph_round_trip(self):
        from repro.graph.random_graphs import with_random_weights

        graph = with_random_weights(random_gnp(20, 0.3, seed=7), seed=7)
        stream = stream_from_graph(graph, seed=8, churn=0.5)
        assert stream.final_graph() == graph

    def test_negative_churn_rejected(self):
        with pytest.raises(ValueError):
            stream_from_graph(random_gnp(5, 0.5, seed=1), seed=1, churn=-0.1)

    def test_deterministic(self):
        graph = random_gnp(20, 0.3, seed=9)
        first = stream_from_graph(graph, seed=10, churn=0.7)
        second = stream_from_graph(graph, seed=10, churn=0.7)
        assert list(first) == list(second)


class TestAdversarialChurn:
    def test_final_graph_preserved(self):
        graph = connected_gnp(25, 0.15, seed=11)
        stream = adversarial_churn_stream(graph, seed=12, rounds=2)
        assert stream.final_graph() == graph

    def test_deletions_dominate_insertions_of_decoys(self):
        graph = connected_gnp(25, 0.15, seed=13)
        stream = adversarial_churn_stream(graph, seed=14, rounds=3)
        assert stream.num_deletions() > graph.num_edges()


class CountingAlgorithm(StreamingAlgorithm):
    """Trivial two-pass algorithm used to verify the runner's contract."""

    def __init__(self):
        self.begun = []
        self.ended = []
        self.tokens_per_pass = {0: 0, 1: 0}

    @property
    def passes_required(self) -> int:
        return 2

    def begin_pass(self, pass_index):
        self.begun.append(pass_index)

    def process(self, update, pass_index):
        self.tokens_per_pass[pass_index] += 1

    def end_pass(self, pass_index):
        self.ended.append(pass_index)

    def finalize(self):
        return self.tokens_per_pass


class TestRunPasses:
    def test_pass_lifecycle(self):
        stream = DynamicStream(3)
        stream.insert(0, 1)
        stream.insert(1, 2)
        algorithm = CountingAlgorithm()
        result = run_passes(stream, algorithm)
        assert algorithm.begun == [0, 1]
        assert algorithm.ended == [0, 1]
        assert result == {0: 2, 1: 2}


class TestSpaceReport:
    def test_accumulates(self):
        report = SpaceReport()
        report.add("sketches", 100)
        report.add("sketches", 50)
        report.add("tables", 10)
        assert report.total_words() == 160
        assert report.total_bits() == 160 * 64

    def test_merge(self):
        left = SpaceReport({"a": 1})
        right = SpaceReport({"a": 2, "b": 3})
        merged = left.merged(right)
        assert merged.components == {"a": 3, "b": 3}

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            SpaceReport().add("x", -1)

    def test_format_table_contains_total(self):
        report = SpaceReport({"x": 5})
        assert "TOTAL" in report.format_table()
