"""Tests for stream updates, the DynamicStream container and model rules."""

import pytest

from repro.stream.stream import DynamicStream
from repro.stream.updates import EdgeUpdate


class TestEdgeUpdate:
    def test_canonicalizes_order(self):
        update = EdgeUpdate(5, 2, +1)
        assert update.pair == (2, 5)
        assert update.u == 2
        assert update.v == 5

    def test_inverted(self):
        update = EdgeUpdate(1, 2, +1, weight=3.0)
        inverse = update.inverted()
        assert inverse.sign == -1
        assert inverse.pair == (1, 2)
        assert inverse.weight == 3.0

    def test_validation(self):
        with pytest.raises(ValueError):
            EdgeUpdate(1, 1, +1)
        with pytest.raises(ValueError):
            EdgeUpdate(0, 1, 0)
        with pytest.raises(ValueError):
            EdgeUpdate(0, 1, +1, weight=0.0)


class TestDynamicStream:
    def test_insert_builds_graph(self):
        stream = DynamicStream(4)
        stream.insert(0, 1)
        stream.insert(1, 2, weight=2.0)
        graph = stream.final_graph()
        assert graph.edge_set() == {(0, 1), (1, 2)}
        assert graph.weight(1, 2) == 2.0

    def test_delete_removes(self):
        stream = DynamicStream(4)
        stream.insert(0, 1)
        stream.insert(2, 3)
        stream.delete(0, 1)
        assert stream.final_graph().edge_set() == {(2, 3)}

    def test_multiplicity_tracking(self):
        stream = DynamicStream(3)
        stream.insert(0, 1)
        stream.insert(0, 1)
        stream.insert(0, 1)
        stream.delete(0, 1)
        assert stream.final_multiplicities() == {(0, 1): 2}

    def test_negative_multiplicity_rejected(self):
        stream = DynamicStream(3)
        with pytest.raises(ValueError):
            stream.delete(0, 1)

    def test_turnstile_weight_change_rejected(self):
        stream = DynamicStream(3)
        stream.insert(0, 1, weight=2.0)
        with pytest.raises(ValueError):
            stream.insert(0, 1, weight=3.0)

    def test_weight_change_after_removal_allowed(self):
        stream = DynamicStream(3)
        stream.insert(0, 1, weight=2.0)
        stream.delete(0, 1, weight=2.0)
        stream.insert(0, 1, weight=5.0)
        assert stream.final_graph().weight(0, 1) == 5.0

    def test_out_of_range_vertex_rejected(self):
        stream = DynamicStream(3)
        with pytest.raises(ValueError):
            stream.insert(0, 3)

    def test_multiple_passes_identical(self):
        stream = DynamicStream(3)
        stream.insert(0, 1)
        stream.delete(0, 1)
        stream.insert(1, 2)
        first = list(stream)
        second = list(stream)
        assert first == second
        assert len(first) == 3

    def test_counts(self):
        stream = DynamicStream(3)
        stream.insert(0, 1)
        stream.insert(1, 2)
        stream.delete(0, 1)
        assert stream.num_insertions() == 2
        assert stream.num_deletions() == 1

    def test_delete_defaults_to_stored_weight(self):
        # Regression: delete() hard-coded weight 1.0, so deleting a live
        # weighted edge without restating its weight raised a spurious
        # "turnstile weight change" error.
        stream = DynamicStream(3)
        stream.insert(0, 1, weight=2.5)
        stream.delete(0, 1)  # no weight restated
        assert stream.final_graph().edge_set() == set()
        assert stream.num_deletions() == 1

    def test_delete_with_explicit_mismatched_weight_still_rejected(self):
        stream = DynamicStream(3)
        stream.insert(0, 1, weight=2.5)
        with pytest.raises(ValueError):
            stream.delete(0, 1, weight=7.0)

    def test_delete_missing_edge_still_rejected(self):
        stream = DynamicStream(3)
        with pytest.raises(ValueError):
            stream.delete(0, 1)
        stream.insert(0, 1, weight=4.0)
        stream.delete(1, 0)  # canonicalization: same edge, stored weight
        assert stream.final_multiplicities() == {}

    def test_counters_track_constructor_updates(self):
        # Counters are maintained incrementally by append(), including
        # for updates handed to the constructor.
        updates = [
            EdgeUpdate(0, 1, +1),
            EdgeUpdate(1, 2, +1),
            EdgeUpdate(0, 1, -1),
            EdgeUpdate(0, 1, +1),
        ]
        stream = DynamicStream(3, updates)
        assert stream.num_insertions() == 3
        assert stream.num_deletions() == 1
