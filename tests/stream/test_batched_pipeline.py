"""Batched pass execution: chunked runs must equal one-token runs."""

from __future__ import annotations

import pytest

from repro.agm import ConnectivityChecker
from repro.core import TwoPassSpannerBuilder
from repro.graph import connected_gnp
from repro.stream import DynamicStream, StreamingAlgorithm, run_passes, stream_from_graph


def _stream(n=32, p=0.2, seed=5, churn=0.6):
    return stream_from_graph(connected_gnp(n, p, seed=seed), seed=seed, churn=churn)


class TestIterBatches:
    def test_chunks_concatenate_to_stream(self):
        stream = _stream()
        for batch_size in (1, 3, 7, len(stream), len(stream) + 10):
            chunks = list(stream.iter_batches(batch_size))
            flattened = [update for chunk in chunks for update in chunk]
            assert flattened == list(stream)
            assert all(len(chunk) <= batch_size for chunk in chunks)

    def test_rejects_nonpositive_batch(self):
        stream = _stream()
        with pytest.raises(ValueError):
            list(stream.iter_batches(0))


class _Recorder(StreamingAlgorithm):
    """Plain algorithm without a process_batch override: the default
    must loop process() so chunked runs see every token once."""

    def __init__(self):
        self.seen = []

    @property
    def passes_required(self):
        return 1

    def process(self, update, pass_index):
        self.seen.append(update)

    def finalize(self):
        return self.seen


class TestRunPassesBatched:
    def test_default_process_batch_loops_process(self):
        stream = _stream()
        scalar = run_passes(stream, _Recorder())
        chunked = run_passes(stream, _Recorder(), batch_size=13)
        assert scalar == chunked == list(stream)

    def test_rejects_nonpositive_batch_size(self):
        stream = _stream()
        with pytest.raises(ValueError):
            run_passes(stream, _Recorder(), batch_size=0)

    def test_connectivity_identical_under_batching(self):
        stream = _stream(n=40, p=0.15, churn=1.0)
        scalar = ConnectivityChecker(40, seed=2).run(stream)
        batched = ConnectivityChecker(40, seed=2).run(stream, batch_size=64)
        assert sorted(map(sorted, scalar)) == sorted(map(sorted, batched))

    def test_two_pass_spanner_identical_under_batching(self):
        stream = _stream(n=28, p=0.2, churn=0.5)
        scalar = TwoPassSpannerBuilder(28, 2, seed=4).run(stream)
        batched = TwoPassSpannerBuilder(28, 2, seed=4).run(stream, batch_size=50)
        assert sorted(scalar.spanner.edges()) == sorted(batched.spanner.edges())
        assert scalar.diagnostics == batched.diagnostics
        assert scalar.observed_edges == batched.observed_edges
