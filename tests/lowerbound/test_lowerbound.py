"""Tests for the Theorem 4 lower-bound game."""

import pytest

from repro.core.additive_spanner import AdditiveSpannerBuilder
from repro.graph.graph import Graph
from repro.lowerbound.hard_instance import sample_hard_instance
from repro.lowerbound.protocol import run_spanner_protocol
from repro.stream.pipeline import StreamingAlgorithm
from repro.util.rng import derive_seed


class TestHardInstance:
    def test_shape(self):
        instance = sample_hard_instance(4, 8, seed=1)
        assert instance.num_vertices == 32
        assert instance.index_length() == 4 * 28  # s * C(8, 2)

    def test_bits_roughly_half(self):
        instance = sample_hard_instance(6, 10, seed=2)
        ones = sum(1 for present in instance.bits.values() if present)
        assert 0.35 * len(instance.bits) < ones < 0.65 * len(instance.bits)

    def test_alice_edges_match_bits(self):
        instance = sample_hard_instance(3, 6, seed=3)
        edges = set(instance.alice_edges())
        for (block, i, j), present in instance.bits.items():
            pair = (instance.vertex(block, i), instance.vertex(block, j))
            assert (pair in edges) == present

    def test_alice_edges_stay_in_blocks(self):
        instance = sample_hard_instance(4, 5, seed=4)
        for u, v in instance.alice_edges():
            assert u // 5 == v // 5

    def test_bob_edges_connect_consecutive_blocks(self):
        instance = sample_hard_instance(4, 5, seed=5)
        bob = instance.bob_edges()
        assert len(bob) == 3
        for index, (u, v) in enumerate(bob):
            assert u // 5 == index
            assert v // 5 == index + 1

    def test_target_consistency(self):
        instance = sample_hard_instance(5, 6, seed=6)
        u, v = instance.target_pair()
        assert u // 6 == v // 6 == instance.target_block
        assert isinstance(instance.target_bit(), bool)

    def test_pairs_are_distinct_vertices(self):
        instance = sample_hard_instance(8, 4, seed=7)
        for u, v in instance.pairs:
            assert u != v

    def test_validation(self):
        with pytest.raises(ValueError):
            sample_hard_instance(1, 4, seed=1)
        with pytest.raises(ValueError):
            sample_hard_instance(4, 1, seed=1)


class StoreEverything(StreamingAlgorithm):
    """The trivial protocol: Alice sends all her edges."""

    def __init__(self, num_vertices):
        self.graph = Graph(num_vertices)
        self.words = 0

    @property
    def passes_required(self):
        return 1

    def process(self, update, pass_index):
        if update.sign > 0:
            self.graph.add_edge(update.u, update.v)
        self.words += 2

    def finalize(self):
        return self.graph

    def space_words(self):
        return self.words


class StoreNothing(StreamingAlgorithm):
    """The degenerate protocol: the message is empty."""

    def __init__(self, num_vertices):
        self.num_vertices = num_vertices

    @property
    def passes_required(self):
        return 1

    def process(self, update, pass_index):
        pass

    def finalize(self):
        return Graph(self.num_vertices)

    def space_words(self):
        return 0


class TestProtocol:
    def test_store_everything_always_wins(self):
        report = run_spanner_protocol(
            4, 6, lambda n, t: StoreEverything(n), trials=20, seed=1
        )
        assert report.success_rate == 1.0
        assert report.mean_message_words > 0

    def test_store_nothing_is_a_coin_flip(self):
        report = run_spanner_protocol(
            4, 6, lambda n, t: StoreNothing(n), trials=60, seed=2
        )
        # Bob always answers "absent": correct iff the bit was 0 (p=1/2).
        assert 0.3 < report.success_rate < 0.7

    def test_additive_spanner_with_ample_space_wins(self):
        def factory(n, trial):
            return AdditiveSpannerBuilder(n, d=8, seed=derive_seed("g", trial))

        report = run_spanner_protocol(4, 8, factory, trials=15, seed=3)
        # d log n exceeds every block degree: all edges are E_low.
        assert report.success_rate >= 0.9

    def test_rejects_multi_pass_algorithms(self):
        from repro.core.two_pass_spanner import TwoPassSpannerBuilder

        with pytest.raises(ValueError):
            run_spanner_protocol(
                4, 6, lambda n, t: TwoPassSpannerBuilder(n, 2, seed=t), trials=1, seed=4
            )

    def test_report_accounting(self):
        report = run_spanner_protocol(
            3, 5, lambda n, t: StoreEverything(n), trials=5, seed=5
        )
        assert report.trials == 5
        assert report.index_bits == 3 * 10
        assert report.message_bits() == report.mean_message_words * 64

    def test_invalid_trials(self):
        with pytest.raises(ValueError):
            run_spanner_protocol(3, 5, lambda n, t: StoreNothing(n), trials=0, seed=6)
